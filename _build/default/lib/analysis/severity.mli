(** Severity of silent data corruptions.

    The paper motivates SDCs as the failure class "producing unacceptable
    or catastrophic system failures", but treats all SDCs alike.  This
    analysis grades them: for every SDC experiment of a single-bit
    campaign, compare the faulty output stream against the golden one and
    measure

    - {e extent}: the fraction of output bytes that differ (how much of
      the result is damaged), including length mismatches;
    - {e onset}: the relative position of the first divergent byte (how
      early the corruption becomes visible).

    A program whose SDCs are single-byte blips near the end of the stream
    fails very differently from one whose output is wholesale garbage;
    bit-position sensitivity ({!by_bit}) separates low-order arithmetic
    noise from high-order/control corruption. *)

type row = {
  program : string;
  technique : Core.Technique.t;
  n_sdc : int;
  mean_extent : float;  (** mean corrupted-byte fraction over SDCs, 0..1 *)
  mean_onset : float;  (** mean first-divergence position, 0..1 *)
  single_byte : int;  (** SDCs corrupting exactly one output byte *)
  wholesale : int;  (** SDCs corrupting more than half the output *)
}

val compute : Study.t -> Core.Technique.t -> row list

val extent : golden:string -> string -> float
(** Fraction of positions (over the longer stream) whose bytes differ;
    positions past the shorter stream's end count as corrupted. *)

val onset : golden:string -> string -> float
(** Relative position of the first difference, in [0, 1]; 1.0 when the
    streams are equal. *)

type bit_row = {
  bit_bucket : int;  (** flipped-bit position / 8 (byte within the word) *)
  n : int;
  sdc : int;
  detected : int;
}

val by_bit : Study.t -> Core.Technique.t -> bit_row list
(** Pooled over all programs: outcome mix by the byte-position of the
    flipped bit within its register (bucket 0 = bits 0-7, etc.).  Low
    buckets are arithmetic noise; high buckets hit sign bits, address high
    bits and exponents. *)
