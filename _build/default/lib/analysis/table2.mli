(** Table II analogue: per-program candidate-instruction counts.

    Reports each workload's dynamic instruction count and the number of
    inject-on-read / inject-on-write candidates in the golden run.  The
    paper's structural property — read candidates exceed write candidates
    because stores, branches and outputs have no destination register —
    must hold for every program. *)

type row = {
  program : string;
  package : string;
  suite : string;
  dyn_count : int;
  read_cands : int;
  write_cands : int;
}

val compute : Study.t -> row list
