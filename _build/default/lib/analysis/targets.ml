type cls = Address | Integer_data | Float_data | Condition

type row = {
  cls : cls;
  n : int;
  sdc : int;
  detected : int;
  benign : int;
}

let cls_of_ty (ty : Ir.Ty.t) =
  match ty with
  | Ptr -> Address
  | I1 -> Condition
  | F64 -> Float_data
  | I8 | I16 | I32 | I64 -> Integer_data

let cls_name = function
  | Address -> "address"
  | Integer_data -> "int-data"
  | Float_data -> "float-data"
  | Condition -> "condition"

let all_classes = [ Address; Integer_data; Float_data; Condition ]

let rows_of_experiments (experiments : Core.Experiment.t array) =
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun (e : Core.Experiment.t) ->
      match e.first with
      | None -> ()
      | Some inj ->
          let cls = cls_of_ty inj.inj_ty in
          let n, sdc, det, ben =
            Option.value ~default:(0, 0, 0, 0) (Hashtbl.find_opt counts cls)
          in
          let sdc = if Core.Outcome.is_sdc e.outcome then sdc + 1 else sdc in
          let det =
            if Core.Outcome.is_detection e.outcome then det + 1 else det
          in
          let ben = if e.outcome = Core.Outcome.Benign then ben + 1 else ben in
          Hashtbl.replace counts cls (n + 1, sdc, det, ben))
    experiments;
  List.filter_map
    (fun cls ->
      match Hashtbl.find_opt counts cls with
      | Some (n, sdc, detected, benign) ->
          Some { cls; n; sdc; detected; benign }
      | None -> None)
    all_classes

let compute (study : Study.t) technique =
  List.map
    (fun (w : Core.Workload.t) ->
      let r =
        Core.Runner.campaign_kept study.runner w (Core.Spec.single technique)
      in
      (w.name, rows_of_experiments r.experiments))
    study.workloads

let pooled study technique =
  let merged = Hashtbl.create 4 in
  List.iter
    (fun (_, rows) ->
      List.iter
        (fun r ->
          let n, sdc, det, ben =
            Option.value ~default:(0, 0, 0, 0) (Hashtbl.find_opt merged r.cls)
          in
          Hashtbl.replace merged r.cls
            (n + r.n, sdc + r.sdc, det + r.detected, ben + r.benign))
        rows)
    (compute study technique);
  List.filter_map
    (fun cls ->
      match Hashtbl.find_opt merged cls with
      | Some (n, sdc, detected, benign) ->
          Some { cls; n; sdc; detected; benign }
      | None -> None)
    all_classes

let pct part whole = if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole
let sdc_pct r = pct r.sdc r.n
let detection_pct r = pct r.detected r.n
