(** Table III analogue: per program and technique, the multi-bit cluster
    (max-MBF, win-size) with the highest SDC percentage. *)

type row = {
  program : string;
  read_best : Core.Spec.t;
  read_sdc_pct : float;
  write_best : Core.Spec.t;
  write_sdc_pct : float;
}

val compute : Study.t -> row list

val of_grids :
  read:Grid.row list -> write:Grid.row list -> row list
(** Derive the table from precomputed grids (avoids recomputation when the
    caller already produced Fig. 4/5). *)
