type row = {
  program : string;
  technique : Core.Technique.t;
  result : Core.Campaign.result;
}

let compute (study : Study.t) technique =
  List.map
    (fun (w : Core.Workload.t) ->
      {
        program = w.name;
        technique;
        result = Core.Runner.campaign study.runner w (Core.Spec.single technique);
      })
    study.workloads
