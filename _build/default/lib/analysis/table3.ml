type row = {
  program : string;
  read_best : Core.Spec.t;
  read_sdc_pct : float;
  write_best : Core.Spec.t;
  write_sdc_pct : float;
}

let of_grids ~read ~write =
  List.map2
    (fun (r : Grid.row) (w : Grid.row) ->
      if r.program <> w.program then
        invalid_arg "Table3.of_grids: program order mismatch";
      let rspec, rres = Grid.best_multi r in
      let wspec, wres = Grid.best_multi w in
      {
        program = r.program;
        read_best = rspec;
        read_sdc_pct = Core.Campaign.sdc_pct rres;
        write_best = wspec;
        write_sdc_pct = Core.Campaign.sdc_pct wres;
      })
    read write

let compute study =
  of_grids
    ~read:(Grid.compute study Core.Technique.Read)
    ~write:(Grid.compute study Core.Technique.Write)
