(** Outcome sensitivity by targeted register class.

    The paper explains its headline asymmetries — inject-on-read yields
    fewer SDCs than inject-on-write, and low-detection programs yield more
    SDCs — by the kind of data the flipped register holds: errors in
    memory addresses mostly raise hardware exceptions, errors in data
    values mostly end Benign or SDC (§IV-A, §IV-C2).  This analysis makes
    that mechanism measurable: single-bit experiments are grouped by the
    flipped register's type class and each class's outcome mix reported. *)

type cls = Address | Integer_data | Float_data | Condition

type row = {
  cls : cls;
  n : int;
  sdc : int;
  detected : int;  (** hardware exceptions + hang + no-output *)
  benign : int;
}

val cls_of_ty : Ir.Ty.t -> cls
(** [Ptr] is [Address]; [I1] is [Condition]; [F64] is [Float_data];
    everything else is [Integer_data]. *)

val cls_name : cls -> string

val compute : Study.t -> Core.Technique.t -> (string * row list) list
(** Per program (registry order), the per-class outcome rows for the
    single bit-flip campaign; classes with no experiments are omitted. *)

val pooled : Study.t -> Core.Technique.t -> row list
(** All programs pooled. *)

val sdc_pct : row -> float
val detection_pct : row -> float
