(** Figure 1 analogue: outcome classification under the single bit-flip
    model, per program and technique. *)

type row = { program : string; technique : Core.Technique.t; result : Core.Campaign.result }

val compute : Study.t -> Core.Technique.t -> row list
(** One row per program, in registry order. *)
