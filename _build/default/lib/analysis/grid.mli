(** Figures 4 and 5 analogue: the SDC grid for multi-register injections —
    per program, the single bit-flip campaign plus one campaign for every
    (max-MBF, positive win-size) cluster.  Table III and the RQ2-RQ4
    summaries are all derived from this grid. *)

type row = {
  program : string;
  technique : Core.Technique.t;
  single : Core.Campaign.result;
  cells : (Core.Spec.t * Core.Campaign.result) list;
      (** 10 x 8 clusters, max-MBF-major, Table I window order *)
}

val compute : Study.t -> Core.Technique.t -> row list

val best_multi : row -> Core.Spec.t * Core.Campaign.result
(** The multi-bit cluster with the highest SDC percentage; ties resolved
    toward lower max-MBF then earlier window (the paper reports the
    smallest sufficient configuration). *)

val single_is_pessimistic : ?slack_pp:float -> row -> bool
(** Whether the single bit-flip model gives a pessimistic (conservative)
    SDC estimate for this program.  With [slack_pp], a fixed-slack
    comparison against the best multi-bit cluster.  Without it, a
    multiple-comparison-aware test: no cluster may exceed the single-bit
    SDC percentage by more than a Bonferroni-corrected margin (floor: the
    paper's one-percentage-point resolution); the verdict converges to the
    paper's comparison as n grows. *)

val se_diff_pp : Core.Campaign.result -> Core.Campaign.result -> float
(** Standard error of the difference of two campaigns' SDC percentages,
    in percentage points. *)

val ci_half_pp : Core.Campaign.result -> float
(** 95% CI half-width of a campaign's SDC share, in percentage points. *)

val min_mbf_reaching_best : row -> win:Core.Win.t -> int option
(** For one window column: the smallest max-MBF whose SDC percentage is
    within one CI half-width of the column's maximum (RQ3). *)
