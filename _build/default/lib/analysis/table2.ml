type row = {
  program : string;
  package : string;
  suite : string;
  dyn_count : int;
  read_cands : int;
  write_cands : int;
}

let compute (study : Study.t) =
  List.map
    (fun (w : Core.Workload.t) ->
      let package, suite =
        match Bench_suite.Registry.find w.name with
        | Some e -> (e.package, e.suite)
        | None -> ("?", "?")
      in
      {
        program = w.name;
        package;
        suite;
        dyn_count = w.golden.dyn_count;
        read_cands = w.golden.read_cands;
        write_cands = w.golden.write_cands;
      })
    study.workloads
