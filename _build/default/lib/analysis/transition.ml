type row = {
  program : string;
  technique : Core.Technique.t;
  best : Core.Spec.t;
  n_detection : int;
  tran1 : int;
  n_benign : int;
  tran2 : int;
}

let replay (w : Core.Workload.t) best ~locations =
  (* Deterministic per-location generators, independent of the campaign
     streams. *)
  let base = Prng.of_seed (Int64.of_int (Hashtbl.hash (w.name, "transition"))) in
  let _, sdc =
    List.fold_left
      (fun (i, sdc) first ->
        let rng = Prng.split_at base i in
        let e = Core.Experiment.run_at w best ~first rng in
        (i + 1, if Core.Outcome.is_sdc e.outcome then sdc + 1 else sdc))
      (0, 0) locations
  in
  sdc

let take n l =
  let rec go acc n = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: tl -> go (x :: acc) (n - 1) tl
  in
  go [] n l

let compute ?(cap = 400) (study : Study.t) technique =
  let grid = Grid.compute study technique in
  List.map2
    (fun (w : Core.Workload.t) (g : Grid.row) ->
      let best, _ = Grid.best_multi g in
      let single =
        Core.Runner.campaign_kept study.runner w (Core.Spec.single technique)
      in
      let locations_of pred =
        Array.to_list single.experiments
        |> List.filter_map (fun (e : Core.Experiment.t) ->
               match e.first with
               | Some inj when pred e.outcome ->
                   Some (inj.inj_cand, inj.inj_slot, inj.inj_bit)
               | Some _ | None -> None)
        |> take cap
      in
      let detection_locs = locations_of Core.Outcome.is_detection in
      let benign_locs =
        locations_of (function Core.Outcome.Benign -> true | _ -> false)
      in
      {
        program = w.name;
        technique;
        best;
        n_detection = List.length detection_locs;
        tran1 = replay w best ~locations:detection_locs;
        n_benign = List.length benign_locs;
        tran2 = replay w best ~locations:benign_locs;
      })
    study.workloads grid

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den
let tran1_pct r = pct r.tran1 r.n_detection
let tran2_pct r = pct r.tran2 r.n_benign
