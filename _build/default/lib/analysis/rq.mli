(** Aggregate answers to the paper's five research questions (§III-F,
    result-summary boxes of §IV). *)

type activation_summary = {
  share_le5 : float;  (** experiments activating at most 5 errors *)
  share_6_10 : float;
  share_gt10 : float;
}

type rq3_summary = {
  pairs_total : int;  (** program x positive-window pairs *)
  pairs_le3 : int;  (** pairs where <= 3 errors reach the peak SDC *)
  max_needed : int;  (** worst-case errors needed over all pairs *)
}

type t = {
  (* RQ1: activated errors at max-MBF = 30 *)
  rq1_read : activation_summary;
  rq1_write : activation_summary;
  (* RQ2: how often is the single-bit model pessimistic? *)
  rq2_campaigns_total : int;  (** multi-bit campaigns counted *)
  rq2_campaigns_single_pessimistic : int;
      (** campaigns whose SDC%% does not exceed the program's single-bit
          SDC%% (the paper's 92%% statistic) *)
  rq2_programs_read_pessimistic : int;  (** of 15, under inject-on-read *)
  rq2_programs_write_pessimistic : int;
  (* RQ3: errors needed for the pessimistic estimate *)
  rq3_read : rq3_summary;
  rq3_write : rq3_summary;
  (* RQ4: window sizes that yield each program's peak SDC *)
  rq4_read_best_wins : (string * Core.Win.t) list;
  rq4_write_best_wins : (string * Core.Win.t) list;
}

val compute : Study.t -> t

val winsize_at_most : (string * Core.Win.t) list -> int -> int
(** How many programs peak at a window whose minimum value is at most the
    given bound (RND ranges count by their lower end). *)
