(** Figure 3 analogue: distribution of the number of activated errors when
    attempting 30 bit-flips (max-MBF = 30), pooled over every positive
    window size and every program.  RQ1's pruning argument rests on this
    distribution being front-loaded. *)

type dist = {
  technique : Core.Technique.t;
  histogram : Stats.Histogram.t;  (** activated-flip count per experiment *)
  total : int;
}

val compute : Study.t -> Core.Technique.t -> dist

val share : dist -> lo:int -> hi:int -> float
(** Fraction of experiments whose activated count lies in the inclusive
    range, in \[0, 1\]. *)
