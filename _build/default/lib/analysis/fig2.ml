type row = {
  program : string;
  technique : Core.Technique.t;
  by_mbf : (int * Core.Campaign.result) list;
}

let compute (study : Study.t) technique =
  List.map
    (fun (w : Core.Workload.t) ->
      let single =
        (1, Core.Runner.campaign study.runner w (Core.Spec.single technique))
      in
      let multi =
        List.map
          (fun max_mbf ->
            let spec = Core.Spec.multi technique ~max_mbf ~win:(Fixed 0) in
            (max_mbf, Core.Runner.campaign study.runner w spec))
          Core.Table1.max_mbf_values
      in
      { program = w.name; technique; by_mbf = single :: multi })
    study.workloads
