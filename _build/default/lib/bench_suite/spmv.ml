(* Parboil cpu/spmv: product of a sparse matrix (CSR, from a deterministic
   coordinate-format generator) with a dense vector, in double precision;
   outputs the result vector.  Accumulation order matches the reference
   exactly, so the output is bit-exact. *)

module B = Ir.Build

let nnz_per_row = 6

let make ~name ~rows =
  let nnz = rows * nnz_per_row in
  let col_idx =
  let raw = Util.gen ~seed:101 ~n:nnz ~bound:rows in
  (* Sort the column indices within each row, as a CSR conversion would. *)
  Array.init nnz (fun i -> i)
  |> Array.map (fun i ->
         let r = i / nnz_per_row in
         ignore r;
         raw.(i))
  |> fun a ->
  for r = 0 to rows - 1 do
    let seg = Array.sub a (r * nnz_per_row) nnz_per_row in
    Array.sort compare seg;
    Array.blit seg 0 a (r * nnz_per_row) nnz_per_row
  done;
    a
  in
  let values = Util.gen_floats ~seed:102 ~n:nnz ~scale:4.0 in
  let x_vec = Util.gen_floats ~seed:103 ~n:rows ~scale:2.0 in
  let row_ptr = Array.init (rows + 1) (fun r -> r * nnz_per_row) in
  let build () =
  let m = B.create () in
  B.global_i32s m "row_ptr" row_ptr;
  B.global_i32s m "col_idx" col_idx;
  B.global_f64s m "values" values;
  B.global_f64s m "x" x_vec;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let i32_at name idx =
        B.load f I32 (B.gep f ~base:(B.glob name) ~index:idx ~scale:4)
      in
      let f64_at name idx =
        B.load f F64 (B.gep f ~base:(B.glob name) ~index:idx ~scale:8)
      in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci rows) (fun row ->
          let acc = B.local_init f F64 (B.cf 0.0) in
          let lo = i32_at "row_ptr" row in
          let hi = i32_at "row_ptr" (B.add f I32 row (B.ci 1)) in
          B.for_ f ~from_:lo ~below:hi (fun k ->
              let c = i32_at "col_idx" k in
              let prod = B.fmul f (f64_at "values" k) (f64_at "x" c) in
              B.set f acc (B.fadd f (B.r acc) prod));
          B.output f F64 (B.r acc)));
    B.finish m
  in
  let reference () =
  let out = Util.Out.create () in
  for row = 0 to rows - 1 do
    let acc = ref 0.0 in
    for k = row_ptr.(row) to row_ptr.(row + 1) - 1 do
      acc := !acc +. (values.(k) *. x_vec.(col_idx.(k)))
    done;
    Util.Out.f64 out !acc
  done;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "parboil";
    package = "cpu";
    description =
      Printf.sprintf
        "sparse matrix (%dx%d CSR, %d nnz/row) times dense vector in double \
         precision; outputs the result vector"
        rows rows nnz_per_row;
    build;
    reference;
  }

let entry = make ~name:"spmv" ~rows:64
let entry_large = make ~name:"spmv-large" ~rows:256
