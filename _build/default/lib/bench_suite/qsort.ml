(* MiBench automotive/qsort: recursive quicksort (Lomuto partition, last
   element as pivot) over a pseudo-random i32 array; the sorted array is the
   output.  Exercises recursion, heavy pointer traffic and data-dependent
   branches.  [entry] sorts 120 elements (the paper's small-input scale),
   [entry_large] 600. *)

module B = Ir.Build

let make ~name ~n =
  let input = Array.map (fun v -> v - 50_000) (Util.gen ~seed:7 ~n ~bound:100_000) in
  let build () =
    let m = B.create () in
    B.global_i32s m "arr" input;
    B.func m "qsortr" ~params:[ I32; I32 ] ~ret:None (fun f ->
        let lo = B.param f 0 and hi = B.param f 1 in
        B.if_then f (B.slt f I32 lo hi) (fun () ->
            let pp = B.gep f ~base:(B.glob "arr") ~index:hi ~scale:4 in
            let pivot = B.load f I32 pp in
            let i = B.local_init f I32 lo in
            B.for_ f ~from_:lo ~below:hi (fun j ->
                let jp = B.gep f ~base:(B.glob "arr") ~index:j ~scale:4 in
                let vj = B.load f I32 jp in
                B.if_then f (B.slt f I32 vj pivot) (fun () ->
                    let ip =
                      B.gep f ~base:(B.glob "arr") ~index:(B.r i) ~scale:4
                    in
                    let vi = B.load f I32 ip in
                    B.store f I32 ~value:vj ~addr:ip;
                    B.store f I32 ~value:vi ~addr:jp;
                    B.set f i (B.add f I32 (B.r i) (B.ci 1))));
            (* swap arr[i] and arr[hi] *)
            let ip = B.gep f ~base:(B.glob "arr") ~index:(B.r i) ~scale:4 in
            let vi = B.load f I32 ip in
            B.store f I32 ~value:pivot ~addr:ip;
            B.store f I32 ~value:vi ~addr:pp;
            B.callv f "qsortr" [ lo; B.sub f I32 (B.r i) (B.ci 1) ];
            B.callv f "qsortr" [ B.add f I32 (B.r i) (B.ci 1); hi ]);
        B.ret f None);
    B.func m "main" ~params:[] ~ret:None (fun f ->
        B.callv f "qsortr" [ B.ci 0; B.ci (n - 1) ];
        B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun i ->
            let p = B.gep f ~base:(B.glob "arr") ~index:i ~scale:4 in
            B.output f I32 (B.load f I32 p)));
    B.finish m
  in
  let reference () =
    let a = Array.copy input in
    Array.sort compare a;
    let out = Util.Out.create () in
    Array.iter (Util.Out.i32 out) a;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "mibench";
    package = "automotive";
    description =
      Printf.sprintf
        "recursive quicksort (Lomuto partition) of %d pseudo-random 32-bit \
         integers; outputs the sorted array"
        n;
    build;
    reference;
  }

let entry = make ~name:"qsort" ~n:120
let entry_large = make ~name:"qsort-large" ~n:600
