(* Parboil base/histo: saturating histogram.  2048 input samples are binned
   into a 2-D histogram (16 x 16 = 256 bins) whose 8-bit counters saturate
   at 255, exactly the original's saturation semantics; the input is skewed
   so several bins do saturate.  Output is the 256-byte histogram. *)

module B = Ir.Build

let bins_x = 16
let bins_y = 16
let n_bins = bins_x * bins_y

let make ~name ~n_samples =
  let samples =
    (* Two populations: a uniform background and a hot cluster that drives
       some bins past 255. *)
    let uniform = Util.gen ~seed:77 ~n:(n_samples / 2) ~bound:n_bins in
    let hot = Util.gen ~seed:78 ~n:(n_samples / 2) ~bound:4 in
    Array.init n_samples (fun i ->
        if i land 1 = 0 then uniform.(i / 2) else 34 + hot.(i / 2))
  in
  let build () =
  let m = B.create () in
  B.global_i32s m "samples" samples;
  B.global_zeros m "hist" n_bins;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n_samples) (fun i ->
          let sp = B.gep f ~base:(B.glob "samples") ~index:i ~scale:4 in
          let v = B.load f I32 sp in
          (* decompose into (row, col) then recompose: mirrors the 2-D
             indexing of the original *)
          let row = B.sdiv f I32 v (B.ci bins_x) in
          let col = B.srem f I32 v (B.ci bins_x) in
          let bin = B.add f I32 (B.mul f I32 row (B.ci bins_x)) col in
          let hp = B.gep f ~base:(B.glob "hist") ~index:bin ~scale:1 in
          let c = B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.load f I8 hp) in
          B.if_then f (B.slt f I32 c (B.ci 255)) (fun () ->
              let inc = B.add f I32 c (B.ci 1) in
              let byte = B.cast f Trunc ~from_ty:I32 ~to_ty:I8 inc in
              B.store f I8 ~value:byte ~addr:hp));
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n_bins) (fun b ->
          let hp = B.gep f ~base:(B.glob "hist") ~index:b ~scale:1 in
          B.output f I8 (B.load f I8 hp)));
    B.finish m
  in
  let reference () =
  let hist = Array.make n_bins 0 in
  Array.iter
    (fun v ->
      let row = v / bins_x and col = v mod bins_x in
      let bin = (row * bins_x) + col in
      if hist.(bin) < 255 then hist.(bin) <- hist.(bin) + 1)
    samples;
    let out = Util.Out.create () in
    Array.iter (Util.Out.u8 out) hist;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "parboil";
    package = "base";
    description =
      Printf.sprintf
        "2-D saturating histogram (256 bins, counters capped at 255) of %d \
         skewed samples; outputs the histogram bytes"
        n_samples;
    build;
    reference;
  }

let entry = make ~name:"histo" ~n_samples:2048
let entry_large = make ~name:"histo-large" ~n_samples:12288
