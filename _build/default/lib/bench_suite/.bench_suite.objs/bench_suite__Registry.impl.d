lib/bench_suite/registry.ml: Basicmath Bfs Crc32 Desc Dijkstra Fft Histo List Qsort Sad Sha Spmv Stringsearch Susan
