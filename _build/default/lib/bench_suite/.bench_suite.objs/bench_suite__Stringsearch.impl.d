lib/bench_suite/stringsearch.ml: Array Bytes Char Desc Ir List Printf String Util
