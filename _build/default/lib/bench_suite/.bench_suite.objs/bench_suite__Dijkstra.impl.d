lib/bench_suite/dijkstra.ml: Array Desc Ir Printf Util
