lib/bench_suite/fft.ml: Array Desc Ir Printf Util
