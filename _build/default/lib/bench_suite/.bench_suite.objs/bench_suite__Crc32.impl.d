lib/bench_suite/crc32.ml: Array Desc Ir Printf Util
