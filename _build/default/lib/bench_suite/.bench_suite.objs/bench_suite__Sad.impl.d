lib/bench_suite/sad.ml: Array Desc Ir Printf Util
