lib/bench_suite/util.ml: Array Buffer Int32 Int64
