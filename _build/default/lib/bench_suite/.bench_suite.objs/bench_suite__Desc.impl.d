lib/bench_suite/desc.ml: Ir
