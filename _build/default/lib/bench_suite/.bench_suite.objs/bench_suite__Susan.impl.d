lib/bench_suite/susan.ml: Array Desc Ir Printf Util
