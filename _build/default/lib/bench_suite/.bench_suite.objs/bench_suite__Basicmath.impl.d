lib/bench_suite/basicmath.ml: Array Desc Ir Util
