lib/bench_suite/bfs.ml: Array Desc Ir List Printf Queue Util
