lib/bench_suite/desc.mli: Ir
