lib/bench_suite/sha.ml: Array Desc Ir Printf Util
