lib/bench_suite/spmv.ml: Array Desc Ir Printf Util
