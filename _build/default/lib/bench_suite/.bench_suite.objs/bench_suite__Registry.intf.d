lib/bench_suite/registry.mli: Desc
