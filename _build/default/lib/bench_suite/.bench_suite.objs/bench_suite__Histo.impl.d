lib/bench_suite/histo.ml: Array Desc Ir Printf Util
