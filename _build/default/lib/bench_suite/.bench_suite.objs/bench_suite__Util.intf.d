lib/bench_suite/util.mli:
