lib/bench_suite/qsort.ml: Array Desc Ir Printf Util
