(* MiBench automotive/basicmath: cubic equation solving, integer square
   roots and angle conversions, as in the original's small input.  The IR
   and the native reference compute the same floating-point expression
   trees, so outputs match bit for bit. *)

module B = Ir.Build

let two_pi = 6.283185307179586
let deg_to_rad = 0.017453292519943295
let rad_to_deg = 57.29577951308232

let make ~name ~n_cubics ~n_usqrt ~n_angles =
  (* Normalised cubics x^3 + b x^2 + c x + d; coefficients in [-8, 8). *)
  let coeffs =
    let raw = Util.gen ~seed:3 ~n:(3 * n_cubics) ~bound:64 in
    Array.map (fun v -> (float_of_int v /. 4.0) -. 8.0) raw
  in
  let usqrt_inputs = Util.gen ~seed:4 ~n:n_usqrt ~bound:0x3FFFFFFF in
  let build () =
  let m = B.create () in
  B.global_f64s m "coeffs" coeffs;
  B.global_i32s m "squares" usqrt_inputs;
  (* Solve one cubic and emit the root count followed by the roots. *)
  B.func m "cubic" ~params:[ F64; F64; F64 ] ~ret:None (fun f ->
      let b = B.param f 0 and c = B.param f 1 and d = B.param f 2 in
      let q =
        B.fdiv f (B.fsub f (B.fmul f b b) (B.fmul f (B.cf 3.0) c)) (B.cf 9.0)
      in
      let t1 = B.fmul f (B.fmul f (B.cf 2.0) (B.fmul f b b)) b in
      let t2 = B.fmul f (B.fmul f (B.cf 9.0) b) c in
      let t3 = B.fmul f (B.cf 27.0) d in
      let rr = B.fdiv f (B.fadd f (B.fsub f t1 t2) t3) (B.cf 54.0) in
      let q3 = B.fmul f (B.fmul f q q) q in
      let r2 = B.fmul f rr rr in
      let b3 = B.fdiv f b (B.cf 3.0) in
      B.if_ f (B.flt f r2 q3)
        ~then_:(fun () ->
          (* three real roots *)
          let th = B.call1 f "acos" [ B.fdiv f rr (B.call1 f "sqrt" [ q3 ]) ] in
          let mag = B.fmul f (B.cf (-2.0)) (B.call1 f "sqrt" [ q ]) in
          let root offset =
            let ang =
              if offset = 0.0 then B.fdiv f th (B.cf 3.0)
              else B.fdiv f (B.fadd f th (B.cf offset)) (B.cf 3.0)
            in
            B.fsub f (B.fmul f mag (B.call1 f "cos" [ ang ])) b3
          in
          B.output f I32 (B.ci 3);
          B.output f F64 (root 0.0);
          B.output f F64 (root two_pi);
          B.output f F64 (root (-.two_pi)))
        ~else_:(fun () ->
          (* one real root *)
          let disc = B.call1 f "sqrt" [ B.fsub f r2 q3 ] in
          let base = B.fadd f disc (B.call1 f "fabs" [ rr ]) in
          let e = B.call1 f "pow" [ base; B.cf (1.0 /. 3.0) ] in
          let neg = B.select f F64 ~cond:(B.flt f rr (B.cf 0.0)) (B.cf (-1.0)) (B.cf 0.0) in
          let sgn = B.select f F64 ~cond:(B.fgt f rr (B.cf 0.0)) (B.cf 1.0) neg in
          let a = B.fmul f (B.fsub f (B.cf 0.0) sgn) e in
          let bb =
            B.select f F64 ~cond:(B.fne f a (B.cf 0.0)) (B.fdiv f q a) (B.cf 0.0)
          in
          B.output f I32 (B.ci 1);
          B.output f F64 (B.fsub f (B.fadd f a bb) b3));
      B.ret f None);
  (* Bit-by-bit integer square root. *)
  B.func m "usqrt" ~params:[ I32 ] ~ret:(Some I32) (fun f ->
      let x = B.param f 0 in
      let root = B.local_init f I32 (B.ci 0) in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 16) (fun i ->
          let shift = B.sub f I32 (B.ci 15) i in
          let tmp = B.bor f I32 (B.r root) (B.shl f I32 (B.ci 1) shift) in
          let sq = B.mul f I32 tmp tmp in
          B.if_then f (B.ule f I32 sq x) (fun () -> B.set f root tmp));
      B.ret f (Some (B.r root)));
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n_cubics) (fun i ->
          let base = B.mul f I32 i (B.ci 3) in
          let at k =
            let p =
              B.gep f ~base:(B.glob "coeffs") ~index:(B.add f I32 base (B.ci k))
                ~scale:8
            in
            B.load f F64 p
          in
          B.callv f "cubic" [ at 0; at 1; at 2 ]);
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n_usqrt) (fun i ->
          let p = B.gep f ~base:(B.glob "squares") ~index:i ~scale:4 in
          B.output f I32 (B.call1 f "usqrt" [ B.load f I32 p ]));
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n_angles) (fun i ->
          let deg = B.cast f Sitofp ~from_ty:I32 ~to_ty:F64 (B.mul f I32 i (B.ci 10)) in
          let rad = B.fmul f deg (B.cf deg_to_rad) in
          B.output f F64 rad;
          B.output f F64 (B.fmul f rad (B.cf rad_to_deg))));
    B.finish m
  in
  let reference () =
  let out = Util.Out.create () in
  for i = 0 to n_cubics - 1 do
    let b = coeffs.(3 * i) and c = coeffs.((3 * i) + 1) and d = coeffs.((3 * i) + 2) in
    let q = ((b *. b) -. (3.0 *. c)) /. 9.0 in
    let t1 = 2.0 *. (b *. b) *. b in
    let t2 = 9.0 *. b *. c in
    let t3 = 27.0 *. d in
    let rr = (t1 -. t2 +. t3) /. 54.0 in
    let q3 = q *. q *. q in
    let r2 = rr *. rr in
    let b3 = b /. 3.0 in
    if r2 < q3 then begin
      let th = acos (rr /. sqrt q3) in
      let mag = -2.0 *. sqrt q in
      Util.Out.i32 out 3;
      Util.Out.f64 out ((mag *. cos (th /. 3.0)) -. b3);
      Util.Out.f64 out ((mag *. cos ((th +. two_pi) /. 3.0)) -. b3);
      Util.Out.f64 out ((mag *. cos ((th -. two_pi) /. 3.0)) -. b3)
    end
    else begin
      let disc = sqrt (r2 -. q3) in
      let base = disc +. abs_float rr in
      let e = base ** (1.0 /. 3.0) in
      let sgn = if rr > 0.0 then 1.0 else if rr < 0.0 then -1.0 else 0.0 in
      let a = (0.0 -. sgn) *. e in
      let bb = if a <> 0.0 then q /. a else 0.0 in
      Util.Out.i32 out 1;
      Util.Out.f64 out (a +. bb -. b3)
    end
  done;
  Array.iter
    (fun x ->
      let root = ref 0 in
      for i = 0 to 15 do
        let shift = 15 - i in
        let tmp = !root lor (1 lsl shift) in
        if tmp * tmp <= x then root := tmp
      done;
      Util.Out.i32 out !root)
    usqrt_inputs;
  for i = 0 to n_angles - 1 do
    let deg = float_of_int (i * 10) in
    let rad = deg *. deg_to_rad in
    Util.Out.f64 out rad;
    Util.Out.f64 out (rad *. rad_to_deg)
  done;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "mibench";
    package = "automotive";
    description =
      "cubic equation solving (both real-root branches), bit-by-bit integer \
       square roots, and degree/radian conversions";
    build;
    reference;
  }

let entry = make ~name:"basicmath" ~n_cubics:20 ~n_usqrt:32 ~n_angles:36

let entry_large =
  make ~name:"basicmath-large" ~n_cubics:80 ~n_usqrt:128 ~n_angles:144
