(* MiBench network/dijkstra: single-source shortest paths over a dense
   adjacency-matrix graph (as in the original's input, an NxN weight
   matrix), run from six different sources; outputs every distance
   vector. *)

module B = Ir.Build

let inf = 0x3FFFFFFF

let make ~name ~n ~n_sources =
  (* Dense weight matrix, weights 1..20; diagonal zero. *)
  let adj =
    let raw = Util.gen ~seed:13 ~n:(n * n) ~bound:20 in
    Array.init (n * n) (fun i -> if i / n = i mod n then 0 else raw.(i) + 1)
  in
  let build () =
  let m = B.create () in
  B.global_i32s m "adj" adj;
  B.global_zeros m "dist" (n * 4);
  B.global_zeros m "visited" (n * 4);
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let at name idx = B.gep f ~base:(B.glob name) ~index:idx ~scale:4 in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n_sources) (fun src ->
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun v ->
              B.store f I32 ~value:(B.ci inf) ~addr:(at "dist" v);
              B.store f I32 ~value:(B.ci 0) ~addr:(at "visited" v));
          B.store f I32 ~value:(B.ci 0) ~addr:(at "dist" src);
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun _round ->
              (* select the closest unvisited node *)
              let u = B.local_init f I32 (B.ci (-1)) in
              let best = B.local_init f I32 (B.ci inf) in
              B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun v ->
                  let unvisited =
                    B.eq f I32 (B.load f I32 (at "visited" v)) (B.ci 0)
                  in
                  let dv = B.load f I32 (at "dist" v) in
                  let closer = B.slt f I32 dv (B.r best) in
                  B.if_then f (B.band f I1 unvisited closer) (fun () ->
                      B.set f best dv;
                      B.set f u v));
              B.if_then f (B.sge f I32 (B.r u) (B.ci 0)) (fun () ->
                  B.store f I32 ~value:(B.ci 1) ~addr:(at "visited" (B.r u));
                  let du = B.load f I32 (at "dist" (B.r u)) in
                  let row = B.mul f I32 (B.r u) (B.ci n) in
                  B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun v ->
                      let wuv = B.load f I32 (at "adj" (B.add f I32 row v)) in
                      let nd = B.add f I32 du wuv in
                      let dv = B.load f I32 (at "dist" v) in
                      B.if_then f (B.slt f I32 nd dv) (fun () ->
                          B.store f I32 ~value:nd ~addr:(at "dist" v)))));
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun v ->
              B.output f I32 (B.load f I32 (at "dist" v)))));
    B.finish m
  in
  let reference () =
  let out = Util.Out.create () in
  for src = 0 to n_sources - 1 do
    let dist = Array.make n inf and visited = Array.make n false in
    dist.(src) <- 0;
    for _ = 1 to n do
      let u = ref (-1) and best = ref inf in
      for v = 0 to n - 1 do
        if (not visited.(v)) && dist.(v) < !best then begin
          best := dist.(v);
          u := v
        end
      done;
      if !u >= 0 then begin
        visited.(!u) <- true;
        for v = 0 to n - 1 do
          let nd = dist.(!u) + adj.((!u * n) + v) in
          if nd < dist.(v) then dist.(v) <- nd
        done
      end
    done;
    Array.iter (Util.Out.i32 out) dist
  done;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "mibench";
    package = "network";
    description =
      Printf.sprintf
        "Dijkstra shortest paths over a dense %d-node adjacency matrix from \
         %d sources; outputs all distance vectors"
        n n_sources;
    build;
    reference;
  }

let entry = make ~name:"dijkstra" ~n:20 ~n_sources:6
let entry_large = make ~name:"dijkstra-large" ~n:40 ~n_sources:8
