(* MiBench automotive/susan (corners, edges, smoothing): simplified SUSAN
   image operators over a 20x20 grayscale image of a rectangle with small
   deterministic noise — the same input family the paper uses.  The
   brightness-similarity kernel uses a hard threshold instead of the
   original's exponential LUT; the USAN-area structure (and thus the
   control- and data-flow the injector sees) is preserved.

   - smoothing: threshold-weighted 3x3 mean;
   - edges:     USAN area over the 8-neighbourhood, response g - n;
   - corners:   USAN area over the 5x5 neighbourhood, response g - n. *)

module B = Ir.Build

let threshold = 27
let edge_g = 6
let corner_g = 12

(* A rectangle covering the middle of the frame, plus mild noise. *)
let make_image w h =
  let noise = Util.gen ~seed:9 ~n:(w * h) ~bound:7 in
  Array.init (w * h) (fun i ->
      let y = i / w and x = i mod w in
      let rect =
        y >= h / 4 && y <= h * 3 / 4 && x >= w / 5 && x <= w * 4 / 5
      in
      let base = if rect then 200 else 20 in
      base + noise.(i) - 3)

(* Emit |img[idx] - centre| <= threshold as an I1 plus the pixel value. *)
let load_pixel f idx =
  let p = B.gep f ~base:(B.glob "img") ~index:idx ~scale:1 in
  B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.load f I8 p)

let abs_diff f a b =
  let d = B.sub f I32 a b in
  B.select f I32 ~cond:(B.slt f I32 d (B.ci 0)) (B.sub f I32 (B.ci 0) d) d

let build_smoothing ~w ~h ~image () =
  let m = B.create () in
  B.global_u8s m "img" image;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci h) (fun y ->
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci w) (fun x ->
              let border y x =
                let at_edge v lim = B.bor f I1
                  (B.eq f I32 v (B.ci 0))
                  (B.eq f I32 v (B.ci (lim - 1)))
                in
                B.bor f I1 (at_edge y h) (at_edge x w)
              in
              let idx = B.add f I32 (B.mul f I32 y (B.ci w)) x in
              let centre = load_pixel f idx in
              B.if_ f (border y x)
                ~then_:(fun () ->
                  B.output f I8 (B.cast f Trunc ~from_ty:I32 ~to_ty:I8 centre))
                ~else_:(fun () ->
                  let sum = B.local_init f I32 (B.ci 0) in
                  let cnt = B.local_init f I32 (B.ci 0) in
                  B.for_ f ~from_:(B.ci (-1)) ~below:(B.ci 2) (fun dy ->
                      B.for_ f ~from_:(B.ci (-1)) ~below:(B.ci 2) (fun dx ->
                          let ni =
                            B.add f I32
                              (B.mul f I32 (B.add f I32 y dy) (B.ci w))
                              (B.add f I32 x dx)
                          in
                          let pix = load_pixel f ni in
                          let close =
                            B.sle f I32 (abs_diff f pix centre)
                              (B.ci threshold)
                          in
                          B.if_then f close (fun () ->
                              B.set f sum (B.add f I32 (B.r sum) pix);
                              B.set f cnt (B.add f I32 (B.r cnt) (B.ci 1)))));
                  let mean = B.sdiv f I32 (B.r sum) (B.r cnt) in
                  B.output f I8 (B.cast f Trunc ~from_ty:I32 ~to_ty:I8 mean)))));
  B.finish m

let build_usan ~w ~h ~image ~radius ~g =
  let m = B.create () in
  B.global_u8s m "img" image;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci h) (fun y ->
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci w) (fun x ->
              let interior v lim =
                B.band f I1
                  (B.sge f I32 v (B.ci radius))
                  (B.slt f I32 v (B.ci (lim - radius)))
              in
              let inside = B.band f I1 (interior y h) (interior x w) in
              B.if_ f inside
                ~then_:(fun () ->
                  let idx = B.add f I32 (B.mul f I32 y (B.ci w)) x in
                  let centre = load_pixel f idx in
                  let n = B.local_init f I32 (B.ci 0) in
                  B.for_ f ~from_:(B.ci (-radius)) ~below:(B.ci (radius + 1))
                    (fun dy ->
                      B.for_ f ~from_:(B.ci (-radius))
                        ~below:(B.ci (radius + 1))
                        (fun dx ->
                          let is_centre =
                            B.band f I1
                              (B.eq f I32 dy (B.ci 0))
                              (B.eq f I32 dx (B.ci 0))
                          in
                          B.if_ f is_centre
                            ~then_:(fun () -> ())
                            ~else_:(fun () ->
                              let ni =
                                B.add f I32
                                  (B.mul f I32 (B.add f I32 y dy) (B.ci w))
                                  (B.add f I32 x dx)
                              in
                              let pix = load_pixel f ni in
                              let close =
                                B.sle f I32 (abs_diff f pix centre)
                                  (B.ci threshold)
                              in
                              B.if_then f close (fun () ->
                                  B.set f n (B.add f I32 (B.r n) (B.ci 1))))));
                  let resp = B.sub f I32 (B.ci g) (B.r n) in
                  let pos = B.sgt f I32 resp (B.ci 0) in
                  let r8 =
                    B.cast f Trunc ~from_ty:I32 ~to_ty:I8
                      (B.select f I32 ~cond:pos resp (B.ci 0))
                  in
                  B.output f I8 r8)
                ~else_:(fun () -> B.output f I8 (B.ci 0)))));
  B.finish m

let ref_smoothing ~w ~h ~image () =
  let out = Util.Out.create () in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let centre = image.((y * w) + x) in
      if y = 0 || y = h - 1 || x = 0 || x = w - 1 then Util.Out.u8 out centre
      else begin
        let sum = ref 0 and cnt = ref 0 in
        for dy = -1 to 1 do
          for dx = -1 to 1 do
            let pix = image.(((y + dy) * w) + x + dx) in
            if abs (pix - centre) <= threshold then begin
              sum := !sum + pix;
              incr cnt
            end
          done
        done;
        Util.Out.u8 out (!sum / !cnt)
      end
    done
  done;
  Util.Out.contents out

let ref_usan ~w ~h ~image ~radius ~g () =
  let out = Util.Out.create () in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if y < radius || y >= h - radius || x < radius || x >= w - radius then
        Util.Out.u8 out 0
      else begin
        let centre = image.((y * w) + x) in
        let n = ref 0 in
        for dy = -radius to radius do
          for dx = -radius to radius do
            if not (dy = 0 && dx = 0) then begin
              let pix = image.(((y + dy) * w) + x + dx) in
              if abs (pix - centre) <= threshold then incr n
            end
          done
        done;
        Util.Out.u8 out (max 0 (g - !n))
      end
    done
  done;
  Util.Out.contents out

let make_smoothing ~name ~w ~h =
  let image = make_image w h in
  {
    Desc.name;
    suite = "mibench";
    package = "automotive";
    description =
      Printf.sprintf
        "threshold-weighted 3x3 smoothing of a %dx%d rectangle image with \
         deterministic noise"
        w h;
    build = build_smoothing ~w ~h ~image;
    reference = ref_smoothing ~w ~h ~image;
  }

let make_edges ~name ~w ~h =
  let image = make_image w h in
  {
    Desc.name;
    suite = "mibench";
    package = "automotive";
    description =
      Printf.sprintf
        "USAN edge response (8-neighbourhood area vs. geometric threshold) \
         on a %dx%d rectangle image"
        w h;
    build = (fun () -> build_usan ~w ~h ~image ~radius:1 ~g:edge_g);
    reference = ref_usan ~w ~h ~image ~radius:1 ~g:edge_g;
  }

let make_corners ~name ~w ~h =
  let image = make_image w h in
  {
    Desc.name;
    suite = "mibench";
    package = "automotive";
    description =
      Printf.sprintf
        "USAN corner response (5x5 neighbourhood area vs. geometric \
         threshold) on a %dx%d rectangle image"
        w h;
    build = (fun () -> build_usan ~w ~h ~image ~radius:2 ~g:corner_g);
    reference = ref_usan ~w ~h ~image ~radius:2 ~g:corner_g;
  }

let smoothing = make_smoothing ~name:"susan_smoothing" ~w:20 ~h:20
let edges = make_edges ~name:"susan_edges" ~w:20 ~h:20
let corners = make_corners ~name:"susan_corners" ~w:20 ~h:20
let smoothing_large = make_smoothing ~name:"susan_smoothing-large" ~w:40 ~h:40
let edges_large = make_edges ~name:"susan_edges-large" ~w:40 ~h:40
let corners_large = make_corners ~name:"susan_corners-large" ~w:40 ~h:40
