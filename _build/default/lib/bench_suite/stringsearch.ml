(* MiBench office/stringsearch: case-insensitive Boyer-Moore-Horspool
   search of several patterns over a synthetic text.  Four patterns occur
   in the text (some repeatedly), two do not.  For each pattern the first
   match position and the total match count are emitted. *)

module B = Ir.Build

let patterns =
  [ "sensor"; "Engine"; "BRAKE"; "torque"; "gearbox"; "manifold" ]

let make ~name ~text_len =
  let text =
    (* Lowercase word soup with planted occurrences in mixed case; plant
       positions scale with the text so larger inputs search further. *)
    let b = Bytes.make text_len ' ' in
    let raw = Util.gen ~seed:55 ~n:text_len ~bound:27 in
    for i = 0 to text_len - 1 do
      let c = if raw.(i) = 26 then ' ' else Char.chr (Char.code 'a' + raw.(i)) in
      Bytes.set b i c
    done;
    let plant pos s = String.iteri (fun i c -> Bytes.set b (pos + i) c) s in
    let sc pos = pos * text_len / 800 in
    plant (sc 40) "SENSOR";
    plant (sc 123) "sensor";
    plant (sc 300) "senSor";
    plant (sc 200) "engine";
    plant (sc 571) "ENGINE";
    plant (sc 660) "brake";
    plant (sc 737) "Torque";
    Bytes.to_string b
  in
  let pat_blob = String.concat "" patterns in
  let pat_offsets =
    let off = ref 0 in
    List.map
      (fun p ->
        let o = !off in
        off := o + String.length p;
        o)
      patterns
  in
  let build () =
  let m = B.create () in
  B.global_string m "text" text;
  B.global_string m "pats" pat_blob;
  B.global_i32s m "offs" (Array.of_list pat_offsets);
  B.global_i32s m "lens"
    (Array.of_list (List.map String.length patterns));
  B.global_zeros m "shift" (256 * 4);
  (* tolower for ASCII *)
  B.func m "lower" ~params:[ I32 ] ~ret:(Some I32) (fun f ->
      let c = B.param f 0 in
      let is_upper =
        B.band f I1
          (B.sge f I32 c (B.ci 65))
          (B.sle f I32 c (B.ci 90))
      in
      B.ret f (Some (B.select f I32 ~cond:is_upper (B.add f I32 c (B.ci 32)) c)));
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let n_pats = List.length patterns in
      let text_at idx =
        let p = B.gep f ~base:(B.glob "text") ~index:idx ~scale:1 in
        B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.load f I8 p)
      in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n_pats) (fun pi ->
          let plen = B.load f I32 (B.gep f ~base:(B.glob "lens") ~index:pi ~scale:4) in
          let poff = B.load f I32 (B.gep f ~base:(B.glob "offs") ~index:pi ~scale:4) in
          let pat_at k =
            let idx = B.add f I32 poff k in
            let p = B.gep f ~base:(B.glob "pats") ~index:idx ~scale:1 in
            B.call1 f "lower"
              [ B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.load f I8 p) ]
          in
          (* Horspool shift table *)
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci 256) (fun c ->
              B.store f I32 ~value:plen
                ~addr:(B.gep f ~base:(B.glob "shift") ~index:c ~scale:4));
          B.for_ f ~from_:(B.ci 0) ~below:(B.sub f I32 plen (B.ci 1)) (fun k ->
              let c = pat_at k in
              let v = B.sub f I32 (B.sub f I32 plen (B.ci 1)) k in
              B.store f I32 ~value:v
                ~addr:(B.gep f ~base:(B.glob "shift") ~index:c ~scale:4));
          (* scan *)
          let count = B.local_init f I32 (B.ci 0) in
          let first = B.local_init f I32 (B.ci (-1)) in
          let pos = B.local_init f I32 (B.ci 0) in
          let limit = B.sub f I32 (B.ci text_len) plen in
          B.while_ f
            ~cond:(fun () -> B.sle f I32 (B.r pos) limit)
            ~body:(fun () ->
              let k = B.local_init f I32 (B.sub f I32 plen (B.ci 1)) in
              let go = B.local_init f I1 (B.ci 1) in
              B.while_ f
                ~cond:(fun () ->
                  B.band f I1 (B.r go) (B.sge f I32 (B.r k) (B.ci 0)))
                ~body:(fun () ->
                  let tc =
                    B.call1 f "lower" [ text_at (B.add f I32 (B.r pos) (B.r k)) ]
                  in
                  let pc = pat_at (B.r k) in
                  B.if_ f (B.eq f I32 tc pc)
                    ~then_:(fun () -> B.set f k (B.sub f I32 (B.r k) (B.ci 1)))
                    ~else_:(fun () -> B.set f go (B.ci 0)));
              B.if_then f (B.slt f I32 (B.r k) (B.ci 0)) (fun () ->
                  B.set f count (B.add f I32 (B.r count) (B.ci 1));
                  B.if_then f (B.slt f I32 (B.r first) (B.ci 0)) (fun () ->
                      B.set f first (B.r pos)));
              (* advance by the shift of the window's last character *)
              let last =
                B.call1 f "lower"
                  [
                    text_at
                      (B.add f I32 (B.r pos) (B.sub f I32 plen (B.ci 1)));
                  ]
              in
              let s =
                B.load f I32 (B.gep f ~base:(B.glob "shift") ~index:last ~scale:4)
              in
              B.set f pos (B.add f I32 (B.r pos) s));
          B.output f I32 (B.r first);
          B.output f I32 (B.r count)));
    B.finish m
  in
  let reference () =
  let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c in
  let out = Util.Out.create () in
  List.iter
    (fun pat ->
      let plen = String.length pat in
      let shift = Array.make 256 plen in
      for k = 0 to plen - 2 do
        shift.(Char.code (lower pat.[k])) <- plen - 1 - k
      done;
      let count = ref 0 and first = ref (-1) in
      let pos = ref 0 in
      while !pos <= text_len - plen do
        let k = ref (plen - 1) in
        while !k >= 0 && lower text.[!pos + !k] = lower pat.[!k] do
          decr k
        done;
        if !k < 0 then begin
          incr count;
          if !first < 0 then first := !pos
        end;
        let last = lower text.[!pos + plen - 1] in
        pos := !pos + shift.(Char.code last)
      done;
      Util.Out.i32 out !first;
      Util.Out.i32 out !count)
    patterns;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "mibench";
    package = "office";
    description =
      Printf.sprintf
        "case-insensitive Horspool search of six patterns over a %d-byte \
         synthetic text; outputs first match and match count per pattern"
        text_len;
    build;
    reference;
  }

let entry = make ~name:"stringsearch" ~text_len:800
let entry_large = make ~name:"stringsearch-large" ~text_len:4000
