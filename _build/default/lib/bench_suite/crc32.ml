(* MiBench telecomm/CRC32: table-driven 32-bit cyclic redundancy check over
   a pseudo-random byte buffer.  The reflected polynomial table is built at
   run time (as in the original), so the table construction itself is
   exposed to fault injection.  A running CRC is emitted every 256 bytes,
   then the final value.

   Like MiBench, two input sizes are provided: the paper's campaigns use
   the small input; [entry_large] processes an 8x larger buffer. *)

module B = Ir.Build

let poly = 0xEDB88320

let make ~name ~input_len =
  let input = Util.gen ~seed:32 ~n:input_len ~bound:256 in
  let build () =
    let m = B.create () in
    B.global_u8s m "input" input;
    B.global_zeros m "table" (256 * 4);
    B.func m "main" ~params:[] ~ret:None (fun f ->
        (* Build the reflected CRC table. *)
        B.for_ f ~from_:(B.ci 0) ~below:(B.ci 256) (fun n ->
            let c = B.local_init f I32 n in
            B.for_ f ~from_:(B.ci 0) ~below:(B.ci 8) (fun _k ->
                let lsb = B.band f I32 (B.r c) (B.ci 1) in
                let half = B.lshr f I32 (B.r c) (B.ci 1) in
                let x = B.bxor f I32 half (B.ci poly) in
                let nz = B.ne f I32 lsb (B.ci 0) in
                B.set f c (B.select f I32 ~cond:nz x half));
            let slot = B.gep f ~base:(B.glob "table") ~index:n ~scale:4 in
            B.store f I32 ~value:(B.r c) ~addr:slot);
        (* Stream the buffer through the CRC. *)
        let crc = B.local_init f I32 (B.ci 0xFFFFFFFF) in
        B.for_ f ~from_:(B.ci 0) ~below:(B.ci input_len) (fun i ->
            let bp = B.gep f ~base:(B.glob "input") ~index:i ~scale:1 in
            let byte = B.load f I8 bp in
            let byte32 = B.cast f Zext ~from_ty:I8 ~to_ty:I32 byte in
            let idx = B.band f I32 (B.bxor f I32 (B.r crc) byte32) (B.ci 0xFF) in
            let tp = B.gep f ~base:(B.glob "table") ~index:idx ~scale:4 in
            let te = B.load f I32 tp in
            B.set f crc (B.bxor f I32 te (B.lshr f I32 (B.r crc) (B.ci 8)));
            let at_mark = B.eq f I32 (B.band f I32 i (B.ci 255)) (B.ci 255) in
            B.if_then f at_mark (fun () ->
                B.output f I32 (B.bxor f I32 (B.r crc) (B.ci 0xFFFFFFFF))));
        B.output f I32 (B.bxor f I32 (B.r crc) (B.ci 0xFFFFFFFF)));
    B.finish m
  in
  let reference () =
    let mask = 0xFFFFFFFF in
    let table = Array.make 256 0 in
    for n = 0 to 255 do
      let c = ref n in
      for _ = 0 to 7 do
        let half = !c lsr 1 in
        c := (if !c land 1 <> 0 then half lxor poly else half) land mask
      done;
      table.(n) <- !c
    done;
    let out = Util.Out.create () in
    let crc = ref mask in
    Array.iteri
      (fun i byte ->
        let idx = (!crc lxor byte) land 0xFF in
        crc := (table.(idx) lxor (!crc lsr 8)) land mask;
        if i land 255 = 255 then Util.Out.i32 out (!crc lxor mask))
      input;
    Util.Out.i32 out (!crc lxor mask);
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "mibench";
    package = "telecomm";
    description =
      Printf.sprintf
        "32-bit cyclic redundancy check over a %d-byte pseudo-random buffer \
         (table built at run time; running CRC every 256 bytes)"
        input_len;
    build;
    reference;
  }

let entry = make ~name:"crc32" ~input_len:1024
let entry_large = make ~name:"crc32-large" ~input_len:8192
