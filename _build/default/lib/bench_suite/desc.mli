(** A benchmark program: an IR module plus a native reference.

    Each of the 15 programs (Table II of the paper) provides [build], the IR
    module the fault injector targets, and [reference], a plain OCaml
    implementation producing the byte-exact expected output of a fault-free
    run.  Tests assert that the VM's golden run matches the reference, which
    validates both the program and the interpreter. *)

type t = {
  name : string;
  suite : string;  (** "mibench" or "parboil" *)
  package : string;  (** e.g. "automotive", "telecomm", "base", "cpu" *)
  description : string;
  build : unit -> Ir.Func.modl;
  reference : unit -> string;
}
