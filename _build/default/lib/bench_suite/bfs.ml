(* Parboil base/bfs: breadth-first search over an irregular CSR graph with
   uniform edge weights, from a single source; outputs the cost (depth) of
   every node, -1 for unreachable ones.  The graph mixes a sparse chain
   with pseudo-random long-range edges, giving the irregular degree
   distribution of the original's road-network input. *)

module B = Ir.Build

let make ~name ~n =
  let edges_of node =
  (* deterministic irregular adjacency *)
  let e1 = ((node * 7) + 1) mod n in
  let e2 = ((node * 13) + 5) mod n in
  let e3 = ((node * 29) + 17) mod n in
  let base = if node mod 3 = 0 then [ e1; e2; e3 ] else [ e1; e2 ] in
  let with_chain = if node + 1 < n && node mod 5 <> 4 then (node + 1) :: base else base in
    List.sort_uniq compare (List.filter (fun e -> e <> node) with_chain)
  in
  let csr_offsets, csr_edges =
    let offsets = Array.make (n + 1) 0 in
    let all = ref [] in
    for node = 0 to n - 1 do
      let es = edges_of node in
      offsets.(node + 1) <- offsets.(node) + List.length es;
      all := List.rev_append es !all
    done;
    (offsets, Array.of_list (List.rev !all))
  in
  let build () =
  let m = B.create () in
  B.global_i32s m "offsets" csr_offsets;
  B.global_i32s m "edges" csr_edges;
  B.global_zeros m "cost" (n * 4);
  B.global_zeros m "queue" (4 * n * 4);
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let at name idx = B.gep f ~base:(B.glob name) ~index:idx ~scale:4 in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun v ->
          B.store f I32 ~value:(B.ci (-1)) ~addr:(at "cost" v));
      B.store f I32 ~value:(B.ci 0) ~addr:(at "cost" (B.ci 0));
      B.store f I32 ~value:(B.ci 0) ~addr:(at "queue" (B.ci 0));
      let head = B.local_init f I32 (B.ci 0) in
      let tail = B.local_init f I32 (B.ci 1) in
      B.while_ f
        ~cond:(fun () -> B.slt f I32 (B.r head) (B.r tail))
        ~body:(fun () ->
          let u = B.load f I32 (at "queue" (B.r head)) in
          B.set f head (B.add f I32 (B.r head) (B.ci 1));
          let cu = B.load f I32 (at "cost" u) in
          let lo = B.load f I32 (at "offsets" u) in
          let hi = B.load f I32 (at "offsets" (B.add f I32 u (B.ci 1))) in
          B.for_ f ~from_:lo ~below:hi (fun e ->
              let v = B.load f I32 (at "edges" e) in
              let cv = B.load f I32 (at "cost" v) in
              B.if_then f (B.slt f I32 cv (B.ci 0)) (fun () ->
                  B.store f I32 ~value:(B.add f I32 cu (B.ci 1))
                    ~addr:(at "cost" v);
                  B.store f I32 ~value:v ~addr:(at "queue" (B.r tail));
                  B.set f tail (B.add f I32 (B.r tail) (B.ci 1)))));
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun v ->
          B.output f I32 (B.load f I32 (at "cost" v))));
    B.finish m
  in
  let reference () =
  let cost = Array.make n (-1) in
  let queue = Queue.create () in
  cost.(0) <- 0;
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if cost.(v) < 0 then begin
          cost.(v) <- cost.(u) + 1;
          Queue.add v queue
        end)
      (edges_of u)
  done;
    let out = Util.Out.create () in
    Array.iter (Util.Out.i32 out) cost;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "parboil";
    package = "base";
    description =
      Printf.sprintf
        "breadth-first search over an irregular %d-node CSR graph from node \
         0; outputs every node's depth (-1 if unreachable)"
        n;
    build;
    reference;
  }

let entry = make ~name:"bfs" ~n:128
let entry_large = make ~name:"bfs-large" ~n:512
