(* MiBench telecomm/FFT and IFFT: iterative radix-2 Cooley-Tukey transform
   over 64 complex points.  FFT runs the forward transform on a synthetic
   waveform; IFFT runs the inverse transform (conjugate twiddles, 1/n
   scaling) on synthetic frequency-domain data, mirroring MiBench's
   separate fft/fft -i workloads.  Twiddle factors are computed at run time
   with the sin/cos builtins, so the twiddle computation is itself a fault
   target. *)

module B = Ir.Build

let minus_two_pi = -6.283185307179586
let two_pi = 6.283185307179586

let build_transform ~n ~log2n ~re0 ~im0 ~inverse () =
  let m = B.create () in
  B.global_f64s m "re" re0;
  B.global_f64s m "im" im0;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let elem name idx = B.gep f ~base:(B.glob name) ~index:idx ~scale:8 in
      let ld name idx = B.load f F64 (elem name idx) in
      let st name idx v = B.store f F64 ~value:v ~addr:(elem name idx) in
      (* Bit-reversal permutation. *)
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun i ->
          let j = B.local_init f I32 (B.ci 0) in
          let t = B.local_init f I32 i in
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci log2n) (fun _ ->
              B.set f j
                (B.bor f I32
                   (B.shl f I32 (B.r j) (B.ci 1))
                   (B.band f I32 (B.r t) (B.ci 1)));
              B.set f t (B.lshr f I32 (B.r t) (B.ci 1)));
          B.if_then f (B.slt f I32 i (B.r j)) (fun () ->
              let ri = ld "re" i and rj = ld "re" (B.r j) in
              st "re" i rj;
              st "re" (B.r j) ri;
              let ii = ld "im" i and ij = ld "im" (B.r j) in
              st "im" i ij;
              st "im" (B.r j) ii));
      (* Butterfly stages. *)
      let len = B.local_init f I32 (B.ci 2) in
      B.while_ f
        ~cond:(fun () -> B.sle f I32 (B.r len) (B.ci n))
        ~body:(fun () ->
          let lenf = B.cast f Sitofp ~from_ty:I32 ~to_ty:F64 (B.r len) in
          let ang0 =
            B.fdiv f (B.cf (if inverse then two_pi else minus_two_pi)) lenf
          in
          let half = B.sdiv f I32 (B.r len) (B.ci 2) in
          let i = B.local_init f I32 (B.ci 0) in
          B.while_ f
            ~cond:(fun () -> B.slt f I32 (B.r i) (B.ci n))
            ~body:(fun () ->
              B.for_ f ~from_:(B.ci 0) ~below:half (fun k ->
                  let kf = B.cast f Sitofp ~from_ty:I32 ~to_ty:F64 k in
                  let ang = B.fmul f ang0 kf in
                  let wr = B.call1 f "cos" [ ang ] in
                  let wi = B.call1 f "sin" [ ang ] in
                  let a = B.add f I32 (B.r i) k in
                  let b = B.add f I32 a half in
                  let reb = ld "re" b and imb = ld "im" b in
                  let tr = B.fsub f (B.fmul f wr reb) (B.fmul f wi imb) in
                  let ti = B.fadd f (B.fmul f wr imb) (B.fmul f wi reb) in
                  let rea = ld "re" a and ima = ld "im" a in
                  st "re" b (B.fsub f rea tr);
                  st "im" b (B.fsub f ima ti);
                  st "re" a (B.fadd f rea tr);
                  st "im" a (B.fadd f ima ti));
              B.set f i (B.add f I32 (B.r i) (B.r len)));
          B.set f len (B.shl f I32 (B.r len) (B.ci 1)));
      (* Emit (optionally 1/n-scaled) spectrum, interleaved re/im. *)
      let scale = B.cf (1.0 /. float_of_int n) in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci n) (fun i ->
          let re = ld "re" i and im = ld "im" i in
          if inverse then begin
            B.output f F64 (B.fmul f re scale);
            B.output f F64 (B.fmul f im scale)
          end
          else begin
            B.output f F64 re;
            B.output f F64 im
          end));
  B.finish m

let ref_transform ~n ~log2n ~re0 ~im0 ~inverse () =
  let re = Array.copy re0 and im = Array.copy im0 in
  for i = 0 to n - 1 do
    let j = ref 0 and t = ref i in
    for _ = 1 to log2n do
      j := (!j lsl 1) lor (!t land 1);
      t := !t lsr 1
    done;
    let j = !j in
    if i < j then begin
      let r = re.(i) in
      re.(i) <- re.(j);
      re.(j) <- r;
      let x = im.(i) in
      im.(i) <- im.(j);
      im.(j) <- x
    end
  done;
  let len = ref 2 in
  while !len <= n do
    let ang0 =
      (if inverse then two_pi else minus_two_pi) /. float_of_int !len
    in
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      for k = 0 to half - 1 do
        let ang = ang0 *. float_of_int k in
        let wr = cos ang and wi = sin ang in
        let a = !i + k in
        let b = a + half in
        let tr = (wr *. re.(b)) -. (wi *. im.(b)) in
        let ti = (wr *. im.(b)) +. (wi *. re.(b)) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done;
  let out = Util.Out.create () in
  let scale = 1.0 /. float_of_int n in
  for i = 0 to n - 1 do
    if inverse then begin
      Util.Out.f64 out (re.(i) *. scale);
      Util.Out.f64 out (im.(i) *. scale)
    end
    else begin
      Util.Out.f64 out re.(i);
      Util.Out.f64 out im.(i)
    end
  done;
  Util.Out.contents out

let make_fft ~name ~log2n =
  let n = 1 lsl log2n in
  let re0 = Util.gen_floats ~seed:21 ~n ~scale:4.0 in
  let im0 = Array.make n 0.0 in
  {
    Desc.name;
    suite = "mibench";
    package = "telecomm";
    description =
      Printf.sprintf
        "%d-point radix-2 FFT of a synthetic waveform; run-time twiddle \
         factors; outputs the interleaved complex spectrum"
        n;
    build = build_transform ~n ~log2n ~re0 ~im0 ~inverse:false;
    reference = ref_transform ~n ~log2n ~re0 ~im0 ~inverse:false;
  }

let make_ifft ~name ~log2n =
  let n = 1 lsl log2n in
  let re0 = Util.gen_floats ~seed:22 ~n ~scale:2.0 in
  let im0 = Util.gen_floats ~seed:23 ~n ~scale:2.0 in
  {
    Desc.name;
    suite = "mibench";
    package = "telecomm";
    description =
      Printf.sprintf
        "%d-point radix-2 inverse FFT of synthetic frequency-domain data \
         (conjugate twiddles, 1/n scaling)"
        n;
    build = build_transform ~n ~log2n ~re0 ~im0 ~inverse:true;
    reference = ref_transform ~n ~log2n ~re0 ~im0 ~inverse:true;
  }

let fft = make_fft ~name:"fft" ~log2n:6
let ifft = make_ifft ~name:"ifft" ~log2n:6
let fft_large = make_fft ~name:"fft-large" ~log2n:8
let ifft_large = make_ifft ~name:"ifft-large" ~log2n:8
