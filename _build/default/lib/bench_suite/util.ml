let gen ~seed ~n ~bound =
  if bound <= 0 then invalid_arg "Util.gen: bound must be positive";
  let s = ref (((seed * 2654435761) land 0x3FFFFFFF) + 12345) in
  Array.init n (fun _ ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      (!s lsr 7) mod bound)

let gen_floats ~seed ~n ~scale =
  let ints = gen ~seed ~n ~bound:65536 in
  Array.map (fun v -> (float_of_int v /. 32768.0 -. 1.0) *. scale) ints

module Out = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 b v = Buffer.add_uint8 b (v land 0xFF)
  let i16 b v = Buffer.add_uint16_le b (v land 0xFFFF)
  let i32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)
  let contents = Buffer.contents
end
