type t = {
  name : string;
  suite : string;
  package : string;
  description : string;
  build : unit -> Ir.Func.modl;
  reference : unit -> string;
}
