(* Parboil cpu/sad: sum of absolute differences for motion estimation.
   A 16x16 reference frame is compared against a shifted/noised current
   frame; for each 8x8 block and each of the 9 search offsets in
   [-1, 1]^2 (window clamped to the frame), the SAD is emitted. *)

module B = Ir.Build

let blk = 8

let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

let make ~name ~dim =
  let blocks_per_side = dim / blk in
  let ref_frame =
    let noise = Util.gen ~seed:91 ~n:(dim * dim) ~bound:9 in
    Array.init (dim * dim) (fun i ->
        let y = i / dim and x = i mod dim in
        let base = if (x / 4) + (y / 4) land 1 = 1 then 150 else 60 in
        base + noise.(i) - 4)
  in
  let cur_frame =
    (* the reference frame shifted by (1, 1) plus fresh noise *)
    let noise = Util.gen ~seed:92 ~n:(dim * dim) ~bound:7 in
    Array.init (dim * dim) (fun i ->
        let y = i / dim and x = i mod dim in
        let sy = min (dim - 1) (y + 1) and sx = min (dim - 1) (x + 1) in
        let v = ref_frame.((sy * dim) + sx) + noise.(i) - 3 in
        if v < 0 then 0 else if v > 255 then 255 else v)
  in
  let build () =
  let m = B.create () in
  B.global_u8s m "reff" ref_frame;
  B.global_u8s m "curf" cur_frame;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let pixel name idx =
        let p = B.gep f ~base:(B.glob name) ~index:idx ~scale:1 in
        B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.load f I8 p)
      in
      let clamp_ir v lim =
        let low = B.select f I32 ~cond:(B.slt f I32 v (B.ci 0)) (B.ci 0) v in
        B.select f I32 ~cond:(B.sgt f I32 low (B.ci (lim - 1))) (B.ci (lim - 1)) low
      in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci blocks_per_side) (fun by ->
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci blocks_per_side) (fun bx ->
              B.for_ f ~from_:(B.ci (-1)) ~below:(B.ci 2) (fun dy ->
                  B.for_ f ~from_:(B.ci (-1)) ~below:(B.ci 2) (fun dx ->
                      let sad = B.local_init f I32 (B.ci 0) in
                      B.for_ f ~from_:(B.ci 0) ~below:(B.ci blk) (fun py ->
                          B.for_ f ~from_:(B.ci 0) ~below:(B.ci blk) (fun px ->
                              let y =
                                B.add f I32 (B.mul f I32 by (B.ci blk)) py
                              in
                              let x =
                                B.add f I32 (B.mul f I32 bx (B.ci blk)) px
                              in
                              let cy = clamp_ir (B.add f I32 y dy) dim in
                              let cx = clamp_ir (B.add f I32 x dx) dim in
                              let a =
                                pixel "curf"
                                  (B.add f I32 (B.mul f I32 cy (B.ci dim)) cx)
                              in
                              let b =
                                pixel "reff"
                                  (B.add f I32 (B.mul f I32 y (B.ci dim)) x)
                              in
                              let d = B.sub f I32 a b in
                              let ad =
                                B.select f I32
                                  ~cond:(B.slt f I32 d (B.ci 0))
                                  (B.sub f I32 (B.ci 0) d)
                                  d
                              in
                              B.set f sad (B.add f I32 (B.r sad) ad)));
                      B.output f I32 (B.r sad))))));
    B.finish m
  in
  let reference () =
  let out = Util.Out.create () in
  for by = 0 to blocks_per_side - 1 do
    for bx = 0 to blocks_per_side - 1 do
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          let sad = ref 0 in
          for py = 0 to blk - 1 do
            for px = 0 to blk - 1 do
              let y = (by * blk) + py and x = (bx * blk) + px in
              let cy = clamp (y + dy) 0 (dim - 1) in
              let cx = clamp (x + dx) 0 (dim - 1) in
              let a = cur_frame.((cy * dim) + cx) in
              let b = ref_frame.((y * dim) + x) in
              sad := !sad + abs (a - b)
            done
          done;
          Util.Out.i32 out !sad
        done
      done
    done
  done;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "parboil";
    package = "cpu";
    description =
      Printf.sprintf
        "sum of absolute differences: 8x8 blocks of a %dx%d frame against a \
         shifted noisy frame over a [-1,1]^2 search window"
        dim dim;
    build;
    reference;
  }

let entry = make ~name:"sad" ~dim:16
let entry_large = make ~name:"sad-large" ~dim:32
