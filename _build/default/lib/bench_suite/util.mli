(** Deterministic input generation and output encoding shared by the IR
    programs and their native references.

    Inputs are generated once at module-build time by [gen] and baked into
    IR globals; the reference implementation consumes the same array, so IR
    and reference always agree on the workload. *)

val gen : seed:int -> n:int -> bound:int -> int array
(** Deterministic pseudo-random integers in \[0, bound).  A fixed LCG —
    not statistically strong, but stable across platforms, which is what
    matters for reproducibility. *)

val gen_floats : seed:int -> n:int -> scale:float -> float array
(** Deterministic floats in \[-scale, scale), derived from [gen]. *)

(** Output accumulator whose encodings are byte-identical to the VM's
    [Output] instruction. *)
module Out : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val i16 : t -> int -> unit
  val i32 : t -> int -> unit
  val f64 : t -> float -> unit
  val contents : t -> string
end
