(* MiBench security/sha: SHA-1 over a 192-byte pseudo-random message
   (pre-padded at build time to 4 × 64-byte blocks).  The full 80-round
   compression and message schedule run in IR; output is the 160-bit
   digest as five i32 words. *)

module B = Ir.Build

let h_init = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |]

let pad msg_len message =
  (* room for the 0x80 marker and the 8-byte length, rounded to a block *)
  let padded_len = (msg_len + 9 + 63) / 64 * 64 in
  let p = Array.make padded_len 0 in
  Array.blit message 0 p 0 msg_len;
  p.(msg_len) <- 0x80;
  (* 64-bit big-endian bit length in the last 8 bytes *)
  let bits = msg_len * 8 in
  p.(padded_len - 3) <- (bits lsr 16) land 0xFF;
  p.(padded_len - 2) <- (bits lsr 8) land 0xFF;
  p.(padded_len - 1) <- bits land 0xFF;
  p

let make ~name ~msg_len =
  let message = Util.gen ~seed:160 ~n:msg_len ~bound:256 in
  let padded = pad msg_len message in
  let padded_len = Array.length padded in
  let build () =
  let m = B.create () in
  B.global_u8s m "msg" padded;
  B.global_zeros m "w" (80 * 4);
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let rotl r x =
        B.bor f I32 (B.shl f I32 x (B.ci r)) (B.lshr f I32 x (B.ci (32 - r)))
      in
      let h = Array.map (fun v -> B.local_init f I32 (B.ci v)) h_init in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci (padded_len / 64)) (fun blk ->
          let base = B.mul f I32 blk (B.ci 64) in
          (* message schedule, words 0-15: big-endian load *)
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci 16) (fun t ->
              let off = B.add f I32 base (B.mul f I32 t (B.ci 4)) in
              let word = B.local_init f I32 (B.ci 0) in
              B.for_ f ~from_:(B.ci 0) ~below:(B.ci 4) (fun k ->
                  let p =
                    B.gep f ~base:(B.glob "msg") ~index:(B.add f I32 off k)
                      ~scale:1
                  in
                  let byte = B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.load f I8 p) in
                  B.set f word
                    (B.bor f I32 (B.shl f I32 (B.r word) (B.ci 8)) byte));
              let wp = B.gep f ~base:(B.glob "w") ~index:t ~scale:4 in
              B.store f I32 ~value:(B.r word) ~addr:wp);
          (* words 16-79 *)
          B.for_ f ~from_:(B.ci 16) ~below:(B.ci 80) (fun t ->
              let wat d =
                let p =
                  B.gep f ~base:(B.glob "w") ~index:(B.sub f I32 t (B.ci d))
                    ~scale:4
                in
                B.load f I32 p
              in
              let x =
                B.bxor f I32
                  (B.bxor f I32 (wat 3) (wat 8))
                  (B.bxor f I32 (wat 14) (wat 16))
              in
              let wp = B.gep f ~base:(B.glob "w") ~index:t ~scale:4 in
              B.store f I32 ~value:(rotl 1 x) ~addr:wp);
          (* compression *)
          let a = B.local_init f I32 (B.r h.(0)) in
          let b = B.local_init f I32 (B.r h.(1)) in
          let c = B.local_init f I32 (B.r h.(2)) in
          let d = B.local_init f I32 (B.r h.(3)) in
          let e = B.local_init f I32 (B.r h.(4)) in
          B.for_ f ~from_:(B.ci 0) ~below:(B.ci 80) (fun t ->
              let fk = B.local f I32 and kk = B.local f I32 in
              B.if_ f
                (B.slt f I32 t (B.ci 20))
                ~then_:(fun () ->
                  (* (b & c) | (~b & d) *)
                  let nb = B.bxor f I32 (B.r b) (B.ci 0xFFFFFFFF) in
                  B.set f fk
                    (B.bor f I32
                       (B.band f I32 (B.r b) (B.r c))
                       (B.band f I32 nb (B.r d)));
                  B.set f kk (B.ci 0x5A827999))
                ~else_:(fun () ->
                  B.if_ f
                    (B.slt f I32 t (B.ci 40))
                    ~then_:(fun () ->
                      B.set f fk
                        (B.bxor f I32 (B.bxor f I32 (B.r b) (B.r c)) (B.r d));
                      B.set f kk (B.ci 0x6ED9EBA1))
                    ~else_:(fun () ->
                      B.if_ f
                        (B.slt f I32 t (B.ci 60))
                        ~then_:(fun () ->
                          B.set f fk
                            (B.bor f I32
                               (B.bor f I32
                                  (B.band f I32 (B.r b) (B.r c))
                                  (B.band f I32 (B.r b) (B.r d)))
                               (B.band f I32 (B.r c) (B.r d)));
                          B.set f kk (B.ci 0x8F1BBCDC))
                        ~else_:(fun () ->
                          B.set f fk
                            (B.bxor f I32
                               (B.bxor f I32 (B.r b) (B.r c))
                               (B.r d));
                          B.set f kk (B.ci 0xCA62C1D6))));
              let wp = B.gep f ~base:(B.glob "w") ~index:t ~scale:4 in
              let wt = B.load f I32 wp in
              let temp =
                B.add f I32
                  (B.add f I32
                     (B.add f I32 (rotl 5 (B.r a)) (B.r fk))
                     (B.add f I32 (B.r e) (B.r kk)))
                  wt
              in
              B.set f e (B.r d);
              B.set f d (B.r c);
              B.set f c (rotl 30 (B.r b));
              B.set f b (B.r a);
              B.set f a temp);
          B.set f h.(0) (B.add f I32 (B.r h.(0)) (B.r a));
          B.set f h.(1) (B.add f I32 (B.r h.(1)) (B.r b));
          B.set f h.(2) (B.add f I32 (B.r h.(2)) (B.r c));
          B.set f h.(3) (B.add f I32 (B.r h.(3)) (B.r d));
          B.set f h.(4) (B.add f I32 (B.r h.(4)) (B.r e)));
      Array.iter (fun hr -> B.output f I32 (B.r hr)) h);
    B.finish m
  in
  let reference () =
  let mask = 0xFFFFFFFF in
  let rotl r x = ((x lsl r) lor (x lsr (32 - r))) land mask in
  let h = Array.copy h_init in
  let w = Array.make 80 0 in
  for blk = 0 to (padded_len / 64) - 1 do
    let base = blk * 64 in
    for t = 0 to 15 do
      let word = ref 0 in
      for k = 0 to 3 do
        word := ((!word lsl 8) lor padded.(base + (t * 4) + k)) land mask
      done;
      w.(t) <- !word
    done;
    for t = 16 to 79 do
      w.(t) <- rotl 1 (w.(t - 3) lxor w.(t - 8) lxor w.(t - 14) lxor w.(t - 16))
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) in
    let d = ref h.(3) and e = ref h.(4) in
    for t = 0 to 79 do
      let fk, kk =
        if t < 20 then
          ((!b land !c) lor (!b lxor mask land !d), 0x5A827999)
        else if t < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
        else if t < 60 then
          ( (!b land !c) lor (!b land !d) lor (!c land !d),
            0x8F1BBCDC )
        else (!b lxor !c lxor !d, 0xCA62C1D6)
      in
      let temp = (rotl 5 !a + fk + !e + kk + w.(t)) land mask in
      e := !d;
      d := !c;
      c := rotl 30 !b;
      b := !a;
      a := temp
    done;
    h.(0) <- (h.(0) + !a) land mask;
    h.(1) <- (h.(1) + !b) land mask;
    h.(2) <- (h.(2) + !c) land mask;
    h.(3) <- (h.(3) + !d) land mask;
    h.(4) <- (h.(4) + !e) land mask
  done;
    let out = Util.Out.create () in
    Array.iter (Util.Out.i32 out) h;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "mibench";
    package = "security";
    description =
      Printf.sprintf
        "SHA-1 digest of a %d-byte pseudo-random message (%d blocks, full \
         80-round compression in IR); outputs the 160-bit digest"
        msg_len (padded_len / 64);
    build;
    reference;
  }

let entry = make ~name:"sha" ~msg_len:192
let entry_large = make ~name:"sha-large" ~msg_len:1984
