(** LLVM-flavoured textual rendering of IR, for diagnostics and the CLI. *)

val operand : Instr.operand -> string
val instr : Instr.t -> string
val terminator : Func.t -> Instr.terminator -> string
val func : Func.t -> string
val modl : Func.modl -> string
