(** Functions, globals and whole IR modules. *)

type block = {
  b_name : string;  (** for diagnostics and pretty-printing *)
  b_instrs : Instr.t array;
  b_term : Instr.terminator;
}

type t = {
  f_name : string;
  f_params : Ty.t list;
      (** parameter [i] is passed in register [i] of the callee's frame *)
  f_ret : Ty.t option;
  f_blocks : block array;  (** entry is block 0 *)
  f_reg_ty : Ty.t array;  (** type of every virtual register *)
}

type global = {
  g_name : string;
  g_init : bytes;  (** initial contents; length is the global's size *)
}

type modl = { m_funcs : t list; m_globals : global list }

val find_func : modl -> string -> t option
val find_global : modl -> string -> global option

val static_instr_count : t -> int
(** Instructions plus terminators over all blocks. *)

val reg_count : t -> int
