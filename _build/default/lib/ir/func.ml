type block = {
  b_name : string;
  b_instrs : Instr.t array;
  b_term : Instr.terminator;
}

type t = {
  f_name : string;
  f_params : Ty.t list;
  f_ret : Ty.t option;
  f_blocks : block array;
  f_reg_ty : Ty.t array;
}

type global = { g_name : string; g_init : bytes }
type modl = { m_funcs : t list; m_globals : global list }

let find_func m name = List.find_opt (fun f -> f.f_name = name) m.m_funcs

let find_global m name =
  List.find_opt (fun g -> g.g_name = name) m.m_globals

let static_instr_count f =
  Array.fold_left
    (fun acc b -> acc + Array.length b.b_instrs + 1)
    0 f.f_blocks

let reg_count f = Array.length f.f_reg_ty
