type v = Instr.operand

type bb = {
  id : int;
  bb_name : string;
  mutable instrs : Instr.t list; (* reversed *)
  mutable term : Instr.terminator option;
}

type mb = {
  mutable funcs : Func.t list; (* reversed *)
  mutable globals : Func.global list; (* reversed *)
  sigs : (string, Ty.t list * Ty.t option) Hashtbl.t;
}

type fb = {
  mb : mb;
  fname : string;
  params : Ty.t list;
  fret : Ty.t option;
  mutable regs : Ty.t list; (* reversed *)
  mutable nregs : int;
  mutable blocks : bb list; (* reversed *)
  mutable nblocks : int;
  mutable cur : bb;
}

let create () = { funcs = []; globals = []; sigs = Hashtbl.create 16 }

let add_global mb name init =
  mb.globals <- { Func.g_name = name; g_init = init } :: mb.globals

let global_bytes mb name b = add_global mb name (Bytes.copy b)
let global_string mb name s = add_global mb name (Bytes.of_string s)

let global_u8s mb name a =
  let b = Bytes.create (Array.length a) in
  Array.iteri (fun i x -> Bytes.set_uint8 b i (x land 0xFF)) a;
  add_global mb name b

let global_i32s mb name a =
  let b = Bytes.create (4 * Array.length a) in
  Array.iteri (fun i x -> Bytes.set_int32_le b (4 * i) (Int32.of_int x)) a;
  add_global mb name b

let global_f64s mb name a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i x -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float x)) a;
  add_global mb name b

let global_zeros mb name n = add_global mb name (Bytes.make n '\000')

let new_block fb name =
  let b = { id = fb.nblocks; bb_name = name; instrs = []; term = None } in
  fb.nblocks <- fb.nblocks + 1;
  fb.blocks <- b :: fb.blocks;
  b

let fresh_reg fb ty =
  let r = fb.nregs in
  fb.nregs <- r + 1;
  fb.regs <- ty :: fb.regs;
  r

let emit fb i = if fb.cur.term = None then fb.cur.instrs <- i :: fb.cur.instrs

let terminate fb t = if fb.cur.term = None then fb.cur.term <- Some t

let local fb ty = fresh_reg fb ty
let param _fb i : v = Reg i
let r i : v = Instr.Reg i
let ci n : v = Instr.Imm n
let cf x : v = Instr.FImm x
let glob name : v = Instr.Glob name

let set fb reg value =
  let ty =
    (* Registers are appended in reverse; index from the back. *)
    List.nth fb.regs (fb.nregs - 1 - reg)
  in
  emit fb (Instr.Mov { ty; dst = reg; a = value })

let local_init fb ty value =
  let reg = fresh_reg fb ty in
  emit fb (Instr.Mov { ty; dst = reg; a = value });
  reg

let binop fb op ty a b : v =
  let dst = fresh_reg fb ty in
  emit fb (Instr.Binop { op; ty; dst; a; b });
  Reg dst

let add fb ty a b = binop fb Instr.Add ty a b
let sub fb ty a b = binop fb Instr.Sub ty a b
let mul fb ty a b = binop fb Instr.Mul ty a b
let sdiv fb ty a b = binop fb Instr.Sdiv ty a b
let udiv fb ty a b = binop fb Instr.Udiv ty a b
let srem fb ty a b = binop fb Instr.Srem ty a b
let urem fb ty a b = binop fb Instr.Urem ty a b
let band fb ty a b = binop fb Instr.And ty a b
let bor fb ty a b = binop fb Instr.Or ty a b
let bxor fb ty a b = binop fb Instr.Xor ty a b
let shl fb ty a b = binop fb Instr.Shl ty a b
let lshr fb ty a b = binop fb Instr.Lshr ty a b
let ashr fb ty a b = binop fb Instr.Ashr ty a b

let fbinop fb op a b : v =
  let dst = fresh_reg fb Ty.F64 in
  emit fb (Instr.Fbinop { op; dst; a; b });
  Reg dst

let fadd fb a b = fbinop fb Instr.Fadd a b
let fsub fb a b = fbinop fb Instr.Fsub a b
let fmul fb a b = fbinop fb Instr.Fmul a b
let fdiv fb a b = fbinop fb Instr.Fdiv a b

let icmp fb op ty a b : v =
  let dst = fresh_reg fb Ty.I1 in
  emit fb (Instr.Icmp { op; ty; dst; a; b });
  Reg dst

let fcmp fb op a b : v =
  let dst = fresh_reg fb Ty.I1 in
  emit fb (Instr.Fcmp { op; dst; a; b });
  Reg dst

let eq fb ty a b = icmp fb Instr.Eq ty a b
let ne fb ty a b = icmp fb Instr.Ne ty a b
let slt fb ty a b = icmp fb Instr.Slt ty a b
let sle fb ty a b = icmp fb Instr.Sle ty a b
let sgt fb ty a b = icmp fb Instr.Sgt ty a b
let sge fb ty a b = icmp fb Instr.Sge ty a b
let ult fb ty a b = icmp fb Instr.Ult ty a b
let ule fb ty a b = icmp fb Instr.Ule ty a b
let ugt fb ty a b = icmp fb Instr.Ugt ty a b
let uge fb ty a b = icmp fb Instr.Uge ty a b
let feq fb a b = fcmp fb Instr.Foeq a b
let fne fb a b = fcmp fb Instr.Fone a b
let flt fb a b = fcmp fb Instr.Folt a b
let fle fb a b = fcmp fb Instr.Fole a b
let fgt fb a b = fcmp fb Instr.Fogt a b
let fge fb a b = fcmp fb Instr.Foge a b

let cast fb op ~from_ty ~to_ty a : v =
  let dst = fresh_reg fb to_ty in
  emit fb (Instr.Cast { op; from_ty; to_ty; dst; a });
  Reg dst

let select fb ty ~cond a b : v =
  let dst = fresh_reg fb ty in
  emit fb (Instr.Select { ty; dst; cond; a; b });
  Reg dst

let mov fb ty a : v =
  let dst = fresh_reg fb ty in
  emit fb (Instr.Mov { ty; dst; a });
  Reg dst

let load fb ty addr : v =
  let dst = fresh_reg fb ty in
  emit fb (Instr.Load { ty; dst; addr });
  Reg dst

let store fb ty ~value ~addr = emit fb (Instr.Store { ty; value; addr })

let gep fb ~base ~index ~scale : v =
  let dst = fresh_reg fb Ty.Ptr in
  emit fb (Instr.Gep { dst; base; index; scale });
  Reg dst

let off fb p n = if n = 0 then p else gep fb ~base:p ~index:(ci n) ~scale:1

let callee_sig fb name =
  match Hashtbl.find_opt fb.mb.sigs name with
  | Some s -> s
  | None -> (
      match Builtins.signature name with
      | Some s -> s
      | None -> invalid_arg ("Build.call: unknown callee " ^ name))

let call fb name args : v option =
  let _, ret = callee_sig fb name in
  match ret with
  | None ->
      emit fb (Instr.Call { dst = None; callee = name; args });
      None
  | Some ty ->
      let dst = fresh_reg fb ty in
      emit fb (Instr.Call { dst = Some dst; callee = name; args });
      Some (Reg dst)

let call1 fb name args =
  match call fb name args with
  | Some v -> v
  | None -> invalid_arg ("Build.call1: void callee " ^ name)

let callv fb name args =
  emit fb (Instr.Call { dst = None; callee = name; args })

let output fb ty value = emit fb (Instr.Output { ty; value })
let guard fb ty a b = emit fb (Instr.Guard { ty; a; b })
let abort_ fb = emit fb Instr.Abort
let ret fb v = terminate fb (Instr.Ret v)

let if_ fb cond ~then_ ~else_ =
  let bt = new_block fb "then"
  and be = new_block fb "else"
  and bj = new_block fb "join" in
  terminate fb (Instr.Cbr { cond; if_true = bt.id; if_false = be.id });
  fb.cur <- bt;
  then_ ();
  terminate fb (Instr.Br bj.id);
  fb.cur <- be;
  else_ ();
  terminate fb (Instr.Br bj.id);
  fb.cur <- bj

let if_then fb cond body = if_ fb cond ~then_:body ~else_:(fun () -> ())

let while_ fb ~cond ~body =
  let bh = new_block fb "head"
  and bb = new_block fb "body"
  and bx = new_block fb "exit" in
  terminate fb (Instr.Br bh.id);
  fb.cur <- bh;
  let c = cond () in
  terminate fb (Instr.Cbr { cond = c; if_true = bb.id; if_false = bx.id });
  fb.cur <- bb;
  body ();
  terminate fb (Instr.Br bh.id);
  fb.cur <- bx

let for_ fb ~from_ ~below body =
  let i = local_init fb Ty.I32 from_ in
  while_ fb
    ~cond:(fun () -> slt fb Ty.I32 (r i) below)
    ~body:(fun () ->
      body (r i);
      set fb i (add fb Ty.I32 (r i) (ci 1)))

let func mb name ~params ~ret:fret body =
  if Hashtbl.mem mb.sigs name then
    invalid_arg ("Build.func: duplicate function " ^ name);
  Hashtbl.replace mb.sigs name (params, fret);
  let entry = { id = 0; bb_name = "entry"; instrs = []; term = None } in
  let fb =
    {
      mb;
      fname = name;
      params;
      fret;
      regs = [];
      nregs = 0;
      blocks = [ entry ];
      nblocks = 1;
      cur = entry;
    }
  in
  List.iter (fun ty -> ignore (fresh_reg fb ty)) params;
  body fb;
  let default_term : Instr.terminator =
    match fret with None -> Ret None | Some _ -> Unreachable
  in
  let blocks =
    fb.blocks |> List.rev
    |> List.map (fun b ->
           {
             Func.b_name = Printf.sprintf "%s%d" b.bb_name b.id;
             b_instrs = Array.of_list (List.rev b.instrs);
             b_term = Option.value b.term ~default:default_term;
           })
    |> Array.of_list
  in
  let f =
    {
      Func.f_name = name;
      f_params = params;
      f_ret = fret;
      f_blocks = blocks;
      f_reg_ty = Array.of_list (List.rev fb.regs);
    }
  in
  mb.funcs <- f :: mb.funcs

let finish mb =
  let m =
    { Func.m_funcs = List.rev mb.funcs; m_globals = List.rev mb.globals }
  in
  Validate.check_exn m;
  m
