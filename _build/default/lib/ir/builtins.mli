(** Signatures of the host math builtins.

    Builtins model externally linked library code (libm): LLFI instruments
    only the program's own IR, so faults are never injected {e inside} a
    builtin — exactly as library code compiled separately is not
    instrumented.  Their argument and result registers in the caller are
    ordinary candidates. *)

val signature : string -> (Ty.t list * Ty.t option) option
(** [signature name] is [Some (params, ret)] for a known builtin. *)

val names : string list
(** All builtin names, for diagnostics. *)
