let f1 = ([ Ty.F64 ], Some Ty.F64)
let f2 = ([ Ty.F64; Ty.F64 ], Some Ty.F64)

let table =
  [
    ("sqrt", f1);
    ("sin", f1);
    ("cos", f1);
    ("tan", f1);
    ("acos", f1);
    ("asin", f1);
    ("atan", f1);
    ("exp", f1);
    ("log", f1);
    ("fabs", f1);
    ("floor", f1);
    ("ceil", f1);
    ("pow", f2);
    ("atan2", f2);
    ("fmod", f2);
  ]

let signature name = List.assoc_opt name table
let names = List.map fst table
