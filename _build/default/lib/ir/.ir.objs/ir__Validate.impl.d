lib/ir/validate.ml: Array Builtins Bytes Format Func Hashtbl Instr List Printf String Ty
