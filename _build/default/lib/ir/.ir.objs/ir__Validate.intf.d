lib/ir/validate.mli: Func
