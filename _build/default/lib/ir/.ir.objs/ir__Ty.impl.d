lib/ir/ty.ml:
