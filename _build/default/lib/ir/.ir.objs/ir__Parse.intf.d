lib/ir/parse.mli: Func
