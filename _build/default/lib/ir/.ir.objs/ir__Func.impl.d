lib/ir/func.ml: Array Instr List Ty
