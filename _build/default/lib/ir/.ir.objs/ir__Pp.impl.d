lib/ir/pp.ml: Array Buffer Bytes Char Func Instr List Printf String Ty
