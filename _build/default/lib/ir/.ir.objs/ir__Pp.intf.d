lib/ir/pp.mli: Func Instr
