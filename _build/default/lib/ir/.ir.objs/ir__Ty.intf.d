lib/ir/ty.mli:
