lib/ir/parse.ml: Array Builtins Bytes Char Func Hashtbl Instr List Option Printf String Ty Validate
