lib/ir/build.mli: Func Instr Ty
