lib/ir/builtins.mli: Ty
