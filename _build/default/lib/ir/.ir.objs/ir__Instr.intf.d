lib/ir/instr.mli: Ty
