lib/ir/bits.mli: Ty
