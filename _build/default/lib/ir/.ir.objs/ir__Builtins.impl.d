lib/ir/builtins.ml: List Ty
