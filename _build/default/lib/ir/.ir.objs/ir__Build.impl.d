lib/ir/build.ml: Array Builtins Bytes Func Hashtbl Instr Int32 Int64 List Option Printf Ty Validate
