lib/ir/bits.ml: Int64 Ty
