let mask ty v =
  let w = Ty.width ty in
  if w >= 63 then v else v land ((1 lsl w) - 1)

let sext ty v =
  let w = Ty.width ty in
  if w >= 63 then v else (v lsl (63 - w)) asr (63 - w)

let flip ty ~bit v =
  let w = Ty.width ty in
  if bit < 0 || bit >= w then invalid_arg "Bits.flip: bit out of range";
  mask ty (v lxor (1 lsl bit))

let flip_float ~bit x =
  if bit < 0 || bit >= 64 then invalid_arg "Bits.flip_float: bit out of range";
  let b = Int64.bits_of_float x in
  Int64.float_of_bits (Int64.logxor b (Int64.shift_left 1L bit))

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v
