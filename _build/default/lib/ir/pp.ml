let operand = function
  | Instr.Reg r -> Printf.sprintf "%%%d" r
  | Instr.Imm n -> string_of_int n
  | Instr.FImm x -> Printf.sprintf "%h" x
  | Instr.Glob g -> "@" ^ g

let ty = Ty.to_string

let instr (i : Instr.t) =
  match i with
  | Binop { op; ty = t; dst; a; b } ->
      Printf.sprintf "%%%d = %s %s %s, %s" dst (Instr.binop_name op) (ty t)
        (operand a) (operand b)
  | Fbinop { op; dst; a; b } ->
      Printf.sprintf "%%%d = %s f64 %s, %s" dst (Instr.fbinop_name op)
        (operand a) (operand b)
  | Icmp { op; ty = t; dst; a; b } ->
      Printf.sprintf "%%%d = icmp %s %s %s, %s" dst (Instr.icmp_name op) (ty t)
        (operand a) (operand b)
  | Fcmp { op; dst; a; b } ->
      Printf.sprintf "%%%d = fcmp %s f64 %s, %s" dst (Instr.fcmp_name op)
        (operand a) (operand b)
  | Select { ty = t; dst; cond; a; b } ->
      Printf.sprintf "%%%d = select %s %s, %s, %s" dst (operand cond) (ty t)
        (operand a) (operand b)
  | Cast { op; from_ty; to_ty; dst; a } ->
      Printf.sprintf "%%%d = %s %s %s to %s" dst (Instr.cast_name op)
        (ty from_ty) (operand a) (ty to_ty)
  | Mov { ty = t; dst; a } ->
      Printf.sprintf "%%%d = mov %s %s" dst (ty t) (operand a)
  | Load { ty = t; dst; addr } ->
      Printf.sprintf "%%%d = load %s, %s" dst (ty t) (operand addr)
  | Store { ty = t; value; addr } ->
      Printf.sprintf "store %s %s, %s" (ty t) (operand value) (operand addr)
  | Gep { dst; base; index; scale } ->
      Printf.sprintf "%%%d = gep %s, %s x %d" dst (operand base) (operand index)
        scale
  | Call { dst; callee; args } ->
      let args = String.concat ", " (List.map operand args) in
      let prefix =
        match dst with Some d -> Printf.sprintf "%%%d = " d | None -> ""
      in
      Printf.sprintf "%scall @%s(%s)" prefix callee args
  | Output { ty = t; value } ->
      Printf.sprintf "output %s %s" (ty t) (operand value)
  | Guard { ty = t; a; b } ->
      Printf.sprintf "guard %s %s, %s" (ty t) (operand a) (operand b)
  | Abort -> "abort"

let block_name (f : Func.t) l =
  if l >= 0 && l < Array.length f.f_blocks then f.f_blocks.(l).b_name
  else Printf.sprintf "<bad:%d>" l

let terminator f (t : Instr.terminator) =
  match t with
  | Br l -> Printf.sprintf "br %%%s" (block_name f l)
  | Cbr { cond; if_true; if_false } ->
      Printf.sprintf "br %s, %%%s, %%%s" (operand cond) (block_name f if_true)
        (block_name f if_false)
  | Ret None -> "ret void"
  | Ret (Some v) -> Printf.sprintf "ret %s" (operand v)
  | Unreachable -> "unreachable"

let func (f : Func.t) =
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.mapi (fun i t -> Printf.sprintf "%s %%%d" (ty t) i) f.f_params)
  in
  let ret = match f.f_ret with None -> "void" | Some t -> ty t in
  Buffer.add_string buf
    (Printf.sprintf "define %s @%s(%s) {\n" ret f.f_name params);
  Array.iter
    (fun (b : Func.block) ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" b.b_name);
      Array.iter
        (fun i -> Buffer.add_string buf ("  " ^ instr i ^ "\n"))
        b.b_instrs;
      Buffer.add_string buf ("  " ^ terminator f b.b_term ^ "\n"))
    f.f_blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let modl (m : Func.modl) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (g : Func.global) ->
      let hex = Buffer.create (2 * Bytes.length g.g_init) in
      Bytes.iter
        (fun c -> Buffer.add_string hex (Printf.sprintf "%02x" (Char.code c)))
        g.g_init;
      Buffer.add_string buf
        (Printf.sprintf "@%s = global [%d x i8] 0x%s\n" g.g_name
           (Bytes.length g.g_init) (Buffer.contents hex)))
    m.m_globals;
  if m.m_globals <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun f ->
      Buffer.add_string buf (func f);
      Buffer.add_char buf '\n')
    m.m_funcs;
  Buffer.contents buf
