exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let ty_of_string = function
  | "i1" -> Ty.I1
  | "i8" -> Ty.I8
  | "i16" -> Ty.I16
  | "i32" -> Ty.I32
  | "i64" -> Ty.I64
  | "f64" -> Ty.F64
  | "ptr" -> Ty.Ptr
  | s -> fail "unknown type %s" s

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* Tokenise a line: commas and parentheses are separators. *)
let tokens line =
  String.map (function ',' | '(' | ')' -> ' ' | c -> c) line
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let reg_of_token t =
  if String.length t > 1 && t.[0] = '%' then
    let body = String.sub t 1 (String.length t - 1) in
    if is_digits body then int_of_string body
    else fail "expected register, got %s" t
  else fail "expected register, got %s" t

let looks_float t =
  String.contains t '.'
  || ((String.length t > 2 && (t.[0] = '0' || t.[0] = '-'))
     && String.contains t 'x' && String.contains t 'p')
  ||
  match String.lowercase_ascii t with
  | "nan" | "-nan" | "inf" | "-inf" | "infinity" | "-infinity" -> true
  | _ -> false

let operand_of_token t : Instr.operand =
  if t = "" then fail "empty operand"
  else if t.[0] = '%' then Reg (reg_of_token t)
  else if t.[0] = '@' then Glob (String.sub t 1 (String.length t - 1))
  else if looks_float t then FImm (float_of_string t)
  else
    match int_of_string_opt t with
    | Some n -> Imm n
    | None -> fail "bad operand %s" t

let binop_of_name = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.Sdiv
  | "udiv" -> Some Instr.Udiv
  | "srem" -> Some Instr.Srem
  | "urem" -> Some Instr.Urem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "lshr" -> Some Instr.Lshr
  | "ashr" -> Some Instr.Ashr
  | _ -> None

let fbinop_of_name = function
  | "fadd" -> Some Instr.Fadd
  | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul
  | "fdiv" -> Some Instr.Fdiv
  | _ -> None

let icmp_of_name = function
  | "eq" -> Instr.Eq
  | "ne" -> Instr.Ne
  | "slt" -> Instr.Slt
  | "sle" -> Instr.Sle
  | "sgt" -> Instr.Sgt
  | "sge" -> Instr.Sge
  | "ult" -> Instr.Ult
  | "ule" -> Instr.Ule
  | "ugt" -> Instr.Ugt
  | "uge" -> Instr.Uge
  | s -> fail "unknown icmp predicate %s" s

let fcmp_of_name = function
  | "oeq" -> Instr.Foeq
  | "one" -> Instr.Fone
  | "olt" -> Instr.Folt
  | "ole" -> Instr.Fole
  | "ogt" -> Instr.Fogt
  | "oge" -> Instr.Foge
  | s -> fail "unknown fcmp predicate %s" s

let cast_of_name = function
  | "trunc" -> Some Instr.Trunc
  | "zext" -> Some Instr.Zext
  | "sext" -> Some Instr.Sext
  | "fptosi" -> Some Instr.Fptosi
  | "sitofp" -> Some Instr.Sitofp
  | "ptrtoint" -> Some Instr.Ptrtoint
  | "inttoptr" -> Some Instr.Inttoptr
  | _ -> None

let op = operand_of_token

(* An instruction body (after any "%d = " prefix was stripped). *)
let parse_instr_body dst toks : Instr.t =
  let need_dst () =
    match dst with Some d -> d | None -> fail "missing destination"
  in
  let no_dst () =
    match dst with
    | None -> ()
    | Some d -> fail "unexpected destination %%%d" d
  in
  match toks with
  | name :: ty :: a :: b :: [] when binop_of_name name <> None ->
      Binop
        {
          op = Option.get (binop_of_name name);
          ty = ty_of_string ty;
          dst = need_dst ();
          a = op a;
          b = op b;
        }
  | name :: "f64" :: a :: b :: [] when fbinop_of_name name <> None ->
      Fbinop
        { op = Option.get (fbinop_of_name name); dst = need_dst (); a = op a; b = op b }
  | [ "icmp"; pred; ty; a; b ] ->
      Icmp
        {
          op = icmp_of_name pred;
          ty = ty_of_string ty;
          dst = need_dst ();
          a = op a;
          b = op b;
        }
  | [ "fcmp"; pred; "f64"; a; b ] ->
      Fcmp { op = fcmp_of_name pred; dst = need_dst (); a = op a; b = op b }
  | [ "select"; cond; ty; a; b ] ->
      Select
        {
          ty = ty_of_string ty;
          dst = need_dst ();
          cond = op cond;
          a = op a;
          b = op b;
        }
  | [ name; from_ty; a; "to"; to_ty ] when cast_of_name name <> None ->
      Cast
        {
          op = Option.get (cast_of_name name);
          from_ty = ty_of_string from_ty;
          to_ty = ty_of_string to_ty;
          dst = need_dst ();
          a = op a;
        }
  | [ "mov"; ty; a ] -> Mov { ty = ty_of_string ty; dst = need_dst (); a = op a }
  | [ "load"; ty; addr ] ->
      Load { ty = ty_of_string ty; dst = need_dst (); addr = op addr }
  | [ "store"; ty; value; addr ] ->
      no_dst ();
      Store { ty = ty_of_string ty; value = op value; addr = op addr }
  | [ "gep"; base; index; "x"; scale ] ->
      Gep
        {
          dst = need_dst ();
          base = op base;
          index = op index;
          scale = int_of_string scale;
        }
  | "call" :: callee :: args when String.length callee > 1 && callee.[0] = '@'
    ->
      Call
        {
          dst;
          callee = String.sub callee 1 (String.length callee - 1);
          args = List.map op args;
        }
  | [ "output"; ty; value ] ->
      no_dst ();
      Output { ty = ty_of_string ty; value = op value }
  | [ "guard"; ty; a; b ] ->
      no_dst ();
      Guard { ty = ty_of_string ty; a = op a; b = op b }
  | [ "abort" ] ->
      no_dst ();
      Abort
  | _ -> fail "cannot parse instruction: %s" (String.concat " " toks)

let parse_instr line : Instr.t =
  match tokens line with
  | d :: "=" :: rest when String.length d > 1 && d.[0] = '%' ->
      parse_instr_body (Some (reg_of_token d)) rest
  | toks -> parse_instr_body None toks

let is_terminator line =
  match tokens line with
  | ("br" | "ret" | "unreachable") :: _ -> true
  | _ -> false

type raw_term = Rbr of string | Rcbr of Instr.operand * string * string | Rret of Instr.operand option | Runreachable

let parse_term line : raw_term =
  let label t =
    if String.length t > 1 && t.[0] = '%' then String.sub t 1 (String.length t - 1)
    else fail "expected block label, got %s" t
  in
  match tokens line with
  | [ "br"; l ] -> Rbr (label l)
  | [ "br"; cond; l1; l2 ] -> Rcbr (op cond, label l1, label l2)
  | [ "ret"; "void" ] -> Rret None
  | [ "ret"; v ] -> Rret (Some (op v))
  | [ "unreachable" ] -> Runreachable
  | _ -> fail "cannot parse terminator: %s" line

(* ---- globals ---- *)

(* "@name = global [N x i8] 0xHEX" *)
let parse_global line : Func.global =
  match String.index_opt line '=' with
      | None -> fail "bad global line: %s" line
      | Some eq ->
          let name = String.trim (String.sub line 0 eq) in
          let name =
            if String.length name > 1 && name.[0] = '@' then
              String.sub name 1 (String.length name - 1)
            else fail "bad global name in: %s" line
          in
          let hex =
            match String.rindex_opt line ' ' with
            | Some sp -> String.sub line (sp + 1) (String.length line - sp - 1)
            | None -> fail "missing global payload: %s" line
          in
          if not (String.length hex >= 2 && String.sub hex 0 2 = "0x") then
            fail "global payload must be 0x-hex: %s" line;
          let hex = String.sub hex 2 (String.length hex - 2) in
          if String.length hex mod 2 <> 0 then fail "odd hex length: %s" line;
          let init = Bytes.create (String.length hex / 2) in
          String.iteri
            (fun i c ->
              let v =
                match c with
                | '0' .. '9' -> Char.code c - Char.code '0'
                | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                | _ -> fail "bad hex digit %c" c
              in
              let bi = i / 2 in
              let old = Char.code (Bytes.get init bi) in
              Bytes.set init bi
                (Char.chr (if i mod 2 = 0 then v lsl 4 else old lor v)))
            hex;
          { Func.g_name = name; g_init = init }

(* ---- functions ---- *)

type raw_block = {
  rb_name : string;
  rb_instrs : Instr.t list;
  rb_term : raw_term;
}

let parse_header line =
  (* "define RET @name(TY %0, TY %1) {" *)
  match tokens line with
  | "define" :: ret :: name :: rest when String.length name > 1 && name.[0] = '@'
    ->
      let fname = String.sub name 1 (String.length name - 1) in
      let ret = if ret = "void" then None else Some (ty_of_string ret) in
      let rec params acc = function
        | [ "{" ] -> List.rev acc
        | ty :: reg :: tl when String.length reg > 0 && reg.[0] = '%' ->
            params (ty_of_string ty :: acc) tl
        | toks -> fail "bad parameter list near: %s" (String.concat " " toks)
      in
      (fname, params [] rest, ret)
  | _ -> fail "bad function header: %s" line

let infer_reg_types ~ret_ty_of (params : Ty.t list) (blocks : raw_block list) =
  let max_reg = ref (List.length params - 1) in
  let note_reg r = if r > !max_reg then max_reg := r in
  let scan_operand (o : Instr.operand) =
    match o with Reg r -> note_reg r | Imm _ | FImm _ | Glob _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter note_reg (Instr.src_regs i);
          Option.iter note_reg (Instr.dst_reg i))
        b.rb_instrs;
      match b.rb_term with
      | Rcbr (c, _, _) -> scan_operand c
      | Rret (Some v) -> scan_operand v
      | Rbr _ | Rret None | Runreachable -> ())
    blocks;
  let reg_ty = Array.make (!max_reg + 1) Ty.I32 in
  List.iteri (fun i ty -> reg_ty.(i) <- ty) params;
  let set_dst d ty = reg_ty.(d) <- ty in
  List.iter
    (fun b ->
      List.iter
        (fun (i : Instr.t) ->
          match i with
          | Binop { ty; dst; _ } -> set_dst dst ty
          | Fbinop { dst; _ } -> set_dst dst Ty.F64
          | Icmp { dst; _ } | Fcmp { dst; _ } -> set_dst dst Ty.I1
          | Select { ty; dst; _ } -> set_dst dst ty
          | Cast { to_ty; dst; _ } -> set_dst dst to_ty
          | Mov { ty; dst; _ } -> set_dst dst ty
          | Load { ty; dst; _ } -> set_dst dst ty
          | Gep { dst; _ } -> set_dst dst Ty.Ptr
          | Call { dst = Some d; callee; _ } -> (
              match ret_ty_of callee with
              | Some ty -> set_dst d ty
              | None -> ())
          | Call { dst = None; _ } | Store _ | Output _ | Guard _ | Abort -> ())
        b.rb_instrs)
    blocks;
  reg_ty

let finalize_function fname params ret blocks ~ret_ty_of : Func.t =
  let index_of_label =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i b -> Hashtbl.replace tbl b.rb_name i) blocks;
    fun l ->
      match Hashtbl.find_opt tbl l with
      | Some i -> i
      | None -> fail "unknown block label %%%s in @%s" l fname
  in
  let term_of = function
    | Rbr l -> Instr.Br (index_of_label l)
    | Rcbr (c, l1, l2) ->
        Instr.Cbr
          { cond = c; if_true = index_of_label l1; if_false = index_of_label l2 }
    | Rret v -> Instr.Ret v
    | Runreachable -> Instr.Unreachable
  in
  {
    Func.f_name = fname;
    f_params = params;
    f_ret = ret;
    f_blocks =
      Array.of_list
        (List.map
           (fun b ->
             {
               Func.b_name = b.rb_name;
               b_instrs = Array.of_list b.rb_instrs;
               b_term = term_of b.rb_term;
             })
           blocks);
    f_reg_ty = infer_reg_types ~ret_ty_of params blocks;
  }

let modl text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && not (String.length l >= 1 && l.[0] = ';'))
    in
    let globals = ref [] in
    (* First pass: function signatures, so call result types infer. *)
    let sigs = Hashtbl.create 16 in
    List.iter
      (fun line ->
        if String.length line > 6 && String.sub line 0 6 = "define" then begin
          let name, params, ret = parse_header line in
          Hashtbl.replace sigs name (params, ret)
        end)
      lines;
    let ret_ty_of callee =
      match Hashtbl.find_opt sigs callee with
      | Some (_, r) -> r
      | None -> Option.bind (Builtins.signature callee) snd
    in
    let funcs = ref [] in
    let rec top = function
      | [] -> ()
      | line :: rest when line.[0] = '@' ->
          globals := parse_global line :: !globals;
          top rest
      | line :: rest when String.length line > 6 && String.sub line 0 6 = "define"
        ->
          let fname, params, ret = parse_header line in
          let rest = func_body fname params ret [] None rest in
          top rest
      | line :: _ -> fail "unexpected line at top level: %s" line
    and func_body fname params ret blocks current = function
      | [] -> fail "unterminated function @%s" fname
      | "}" :: rest ->
          (match current with
          | Some _ -> fail "block without terminator in @%s" fname
          | None -> ());
          funcs :=
            finalize_function fname params ret (List.rev blocks) ~ret_ty_of
            :: !funcs;
          rest
      | line :: rest when String.length line > 1 && line.[String.length line - 1] = ':'
        ->
          (match current with
          | Some _ -> fail "block without terminator in @%s" fname
          | None -> ());
          let name = String.sub line 0 (String.length line - 1) in
          func_body fname params ret blocks (Some (name, [])) rest
      | line :: rest -> (
          match current with
          | None -> fail "instruction outside a block in @%s: %s" fname line
          | Some (bname, instrs) ->
              if is_terminator line then
                let block =
                  {
                    rb_name = bname;
                    rb_instrs = List.rev instrs;
                    rb_term = parse_term line;
                  }
                in
                func_body fname params ret (block :: blocks) None rest
              else
                func_body fname params ret blocks
                  (Some (bname, parse_instr line :: instrs))
                  rest)
    in
    top lines;
    let m =
      { Func.m_funcs = List.rev !funcs; m_globals = List.rev !globals }
    in
    match Validate.check m with
    | Ok () -> Ok m
    | Error es -> Error ("validation: " ^ String.concat "; " es)
  with
  | Parse_error msg -> Error msg
  | Failure msg -> Error msg

let modl_exn text =
  match modl text with
  | Ok m -> m
  | Error msg -> invalid_arg ("Ir.Parse: " ^ msg)
