(** Bit-level helpers shared by the interpreter and the fault injector.

    Integer register values are kept in {e canonical form}: the meaningful
    bits occupy positions [0 .. width-1] and everything above is zero
    ([I64], at 63 bits, fills the native int exactly).  All VM arithmetic
    re-canonicalises its results, so a flip is a plain XOR followed by a
    mask. *)

val mask : Ty.t -> int -> int
(** Truncate a native int to the type's width (zero-extension above). *)

val sext : Ty.t -> int -> int
(** Sign-extend a canonical value of the given type to a native int. *)

val flip : Ty.t -> bit:int -> int -> int
(** Flip one bit of a canonical integer value.  Requires
    [0 <= bit < width ty]. *)

val flip_float : bit:int -> float -> float
(** Flip one bit of the IEEE-754 representation of a double.
    Requires [0 <= bit < 64]. *)

val popcount : int -> int
(** Number of set bits in a native int. *)
