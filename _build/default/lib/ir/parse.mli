(** Parser for the textual IR emitted by {!Pp}.

    [Pp.modl] and [modl] round-trip: parsing a printed module yields a
    module that prints identically and validates (the test suite asserts
    this for all 15 benchmark programs).  Register types, which the text
    omits, are reconstructed from parameter signatures and destination
    types; a register that is read but never written anywhere defaults to
    [i32].

    The concrete syntax, by example:
    {v
    @data = global [4 x i8] 0x0a141e28

    define i32 @f(i32 %0) {
    entry0:
      %1 = add i32 %0, 5
      %2 = load i32, @data
      store i32 %1, @data
      output i32 %2
      ret %1
    }
    v} *)

val modl : string -> (Func.modl, string) result
(** Parse a whole module.  The result is validated; validation problems
    are reported as [Error]. *)

val modl_exn : string -> Func.modl
(** @raise Invalid_argument on parse or validation errors. *)
