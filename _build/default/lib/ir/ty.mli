(** Register types of the intermediate representation.

    The IR mirrors the LLVM types that LLFI-style injectors target.  Every
    register value is a bit pattern of its type's width; bit-flips are
    defined uniformly over those widths.

    Substitutions versus real LLVM (recorded in DESIGN.md):
    - [I64] is 63 bits wide because integer values are carried in native
      OCaml ints.  The benchmarks use it only incidentally.
    - [Ptr] is 32 bits wide: the programs model an embedded 32-bit address
      space (MiBench is an embedded suite), and the VM arena fits in it. *)

type t = I1 | I8 | I16 | I32 | I64 | F64 | Ptr

val width : t -> int
(** Bit width used for masking and for drawing bit-flip positions:
    1, 8, 16, 32, 63, 64 and 32 respectively. *)

val bytes : t -> int
(** Width of a memory access or an output record of this type, in bytes:
    1, 1, 2, 4, 8, 8, 4. *)

val is_float : t -> bool
val is_int : t -> bool
(** [is_int] is true for everything except [F64] (pointers count as ints:
    they live in the integer register bank). *)

val equal : t -> t -> bool
val to_string : t -> string
