(** Static validation of IR modules.

    The interpreter assumes well-typed input; every module built by the
    benchmark suite (or a library user) should pass [check] before being
    loaded.  Errors are human-readable strings locating the offending
    function, block and instruction. *)

val check : Func.modl -> (unit, string list) result
(** All detected problems, or [Ok ()]. *)

val check_exn : Func.modl -> unit
(** @raise Invalid_argument with the concatenated problems. *)
