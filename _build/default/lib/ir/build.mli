(** Structured builder for IR modules.

    The benchmark suite writes its programs against this interface.  A
    function body is an OCaml callback that emits instructions into a
    current block; [if_], [while_] and [for_] introduce the block structure
    so callers never manipulate labels.  Code emitted after a terminator
    (e.g. after [ret] inside a branch) lands in an unreachable block and is
    retained but never executed.

    Example — sum of squares 0..9, written to the output stream:
    {[
      let m = Build.create () in
      Build.func m "main" ~params:[] ~ret:None (fun f ->
          let acc = Build.local_init f I32 (Build.ci 0) in
          Build.for_ f ~from_:(Build.ci 0) ~below:(Build.ci 10) (fun i ->
              let sq = Build.mul f I32 i i in
              Build.set f acc (Build.add f I32 (Build.r acc) sq));
          Build.output f I32 (Build.r acc));
      let m = Build.finish m in
      ...
    ]} *)

type mb
(** A module under construction. *)

type fb
(** A function under construction. *)

type v = Instr.operand

val create : unit -> mb

val finish : mb -> Func.modl
(** Finalise and validate.
    @raise Invalid_argument if validation fails. *)

(** {1 Globals} *)

val global_bytes : mb -> string -> bytes -> unit
val global_string : mb -> string -> string -> unit
val global_u8s : mb -> string -> int array -> unit
(** Each element is truncated to one byte. *)

val global_i32s : mb -> string -> int array -> unit
(** Little-endian 32-bit encoding, 4 bytes per element. *)

val global_f64s : mb -> string -> float array -> unit
(** IEEE-754 little-endian, 8 bytes per element. *)

val global_zeros : mb -> string -> int -> unit
(** [n] zero bytes of scratch space. *)

(** {1 Functions} *)

val func : mb -> string -> params:Ty.t list -> ret:Ty.t option -> (fb -> unit) -> unit
(** Define a function.  The signature is registered before the body runs,
    so direct recursion works; calls to not-yet-defined siblings fail at
    build time (define callees first). *)

val param : fb -> int -> v
(** Parameter [i], passed in register [i]. *)

(** {1 Registers, constants} *)

val local : fb -> Ty.t -> int
(** Fresh virtual register (mutable: [set] may target it repeatedly). *)

val local_init : fb -> Ty.t -> v -> int
val set : fb -> int -> v -> unit
(** [set f r v] emits a [Mov] of [v] into register [r]. *)

val r : int -> v
(** Read a register: [r i] is the operand [Reg i]. *)

val ci : int -> v
(** Integer immediate. *)

val cf : float -> v
(** Float immediate. *)

val glob : string -> v
(** Address of a global. *)

(** {1 Integer and float arithmetic}

    Each operation allocates a fresh destination register and returns it as
    an operand. *)

val binop : fb -> Instr.binop -> Ty.t -> v -> v -> v
val add : fb -> Ty.t -> v -> v -> v
val sub : fb -> Ty.t -> v -> v -> v
val mul : fb -> Ty.t -> v -> v -> v
val sdiv : fb -> Ty.t -> v -> v -> v
val udiv : fb -> Ty.t -> v -> v -> v
val srem : fb -> Ty.t -> v -> v -> v
val urem : fb -> Ty.t -> v -> v -> v
val band : fb -> Ty.t -> v -> v -> v
val bor : fb -> Ty.t -> v -> v -> v
val bxor : fb -> Ty.t -> v -> v -> v
val shl : fb -> Ty.t -> v -> v -> v
val lshr : fb -> Ty.t -> v -> v -> v
val ashr : fb -> Ty.t -> v -> v -> v
val fadd : fb -> v -> v -> v
val fsub : fb -> v -> v -> v
val fmul : fb -> v -> v -> v
val fdiv : fb -> v -> v -> v

(** {1 Comparisons} (result is an [I1] register) *)

val icmp : fb -> Instr.icmp -> Ty.t -> v -> v -> v
val fcmp : fb -> Instr.fcmp -> v -> v -> v
val eq : fb -> Ty.t -> v -> v -> v
val ne : fb -> Ty.t -> v -> v -> v
val slt : fb -> Ty.t -> v -> v -> v
val sle : fb -> Ty.t -> v -> v -> v
val sgt : fb -> Ty.t -> v -> v -> v
val sge : fb -> Ty.t -> v -> v -> v
val ult : fb -> Ty.t -> v -> v -> v
val ule : fb -> Ty.t -> v -> v -> v
val ugt : fb -> Ty.t -> v -> v -> v
val uge : fb -> Ty.t -> v -> v -> v
val feq : fb -> v -> v -> v
val fne : fb -> v -> v -> v
val flt : fb -> v -> v -> v
val fle : fb -> v -> v -> v
val fgt : fb -> v -> v -> v
val fge : fb -> v -> v -> v

(** {1 Casts and moves} *)

val cast : fb -> Instr.cast -> from_ty:Ty.t -> to_ty:Ty.t -> v -> v
val select : fb -> Ty.t -> cond:v -> v -> v -> v
val mov : fb -> Ty.t -> v -> v
(** Copy into a fresh register (useful to materialise an immediate). *)

(** {1 Memory} *)

val load : fb -> Ty.t -> v -> v
val store : fb -> Ty.t -> value:v -> addr:v -> unit
val gep : fb -> base:v -> index:v -> scale:int -> v
val off : fb -> v -> int -> v
(** [off f p n] is [p + n] bytes ([p] unchanged when [n = 0]). *)

(** {1 Calls, output, termination} *)

val call : fb -> string -> v list -> v option
(** Result register if the callee returns a value.
    @raise Invalid_argument on unknown callee. *)

val call1 : fb -> string -> v list -> v
(** Like [call] but requires a returning callee. *)

val callv : fb -> string -> v list -> unit
(** Call discarding any result. *)

val output : fb -> Ty.t -> v -> unit

val guard : fb -> Ty.t -> v -> v -> unit
(** Software detector: trap with [Guard_violation] unless the operands are
    bitwise equal (used by hardening passes and hand-written checks). *)

val abort_ : fb -> unit
val ret : fb -> v option -> unit

(** {1 Structured control flow} *)

val if_ : fb -> v -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
val if_then : fb -> v -> (unit -> unit) -> unit
val while_ : fb -> cond:(unit -> v) -> body:(unit -> unit) -> unit
val for_ : fb -> from_:v -> below:v -> (v -> unit) -> unit
(** [for_ f ~from_ ~below body] iterates an [I32] counter by +1; [below] is
    re-evaluated each iteration, so prefer loop-invariant operands. *)
