type t = I1 | I8 | I16 | I32 | I64 | F64 | Ptr

let width = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 63
  | F64 -> 64
  | Ptr -> 32

let bytes = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 | Ptr -> 4
  | I64 | F64 -> 8

let is_float = function F64 -> true | I1 | I8 | I16 | I32 | I64 | Ptr -> false
let is_int t = not (is_float t)
let equal (a : t) b = a = b

let to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr -> "ptr"
