(** Precomputed per-instruction operand metadata.

    The injector decides candidacy from this: an instruction is an
    inject-on-read candidate iff [srcs] is non-empty, and an
    inject-on-write candidate iff [dst >= 0].  Computed once at load time
    so the interpreter's hot loop does no list allocation. *)

type t = {
  srcs : int array;
      (** register source operand slots, in operand order, duplicates kept *)
  dst : int;  (** destination register, or -1 *)
}

val no_operands : t
val of_instr : Ir.Instr.t -> t
val of_term : Ir.Instr.terminator -> t
