(** Byte-addressable segmented memory.

    The loader lays globals out with guard gaps between them and a 4 KiB
    null page at address 0; any access touching an unmapped byte raises
    {!Trap.Trap}[ Segfault], and accesses not aligned to
    [min (size, 4)] bytes raise [Misaligned] (the paper counts 4-byte
    alignment violations as hardware exceptions).  All multi-byte accesses
    are little-endian. *)

type t

val create_template : size:int -> regions:(int * bytes) list -> t
(** A template with the given initialised, mapped regions.  Regions must be
    disjoint and in-bounds.  Templates are never executed against directly;
    every run gets a [clone]. *)

val clone : t -> t
(** Copy the arena (cheap, a single [Bytes.copy]); the mapped-byte table is
    immutable and shared. *)

val size : t -> int

val read_int : t -> width:int -> addr:int -> int
(** [width] is 1, 2, 4 or 8 bytes; the result is the zero-extended value
    (an 8-byte read yields the low 63 bits). Raises {!Trap.Trap}. *)

val write_int : t -> width:int -> addr:int -> int -> unit
val read_f64 : t -> addr:int -> float
val write_f64 : t -> addr:int -> float -> unit

val peek_bytes : t -> addr:int -> len:int -> bytes
(** Unchecked snapshot for tests and debugging (still bounds-checked). *)
