lib/vm/memory.mli:
