lib/vm/program.ml: Array Bytes Float Hashtbl Ir List Memory Meta Option
