lib/vm/memory.ml: Bytes Int32 Int64 List Trap
