lib/vm/trap.ml:
