lib/vm/exec.mli: Ir Meta Program Trap
