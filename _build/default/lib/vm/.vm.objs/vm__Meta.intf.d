lib/vm/meta.mli: Ir
