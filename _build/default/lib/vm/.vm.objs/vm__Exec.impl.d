lib/vm/exec.ml: Array Buffer Float Hashtbl Int32 Int64 Ir List Memory Meta Program Stdlib Trap
