lib/vm/trap.mli:
