lib/vm/meta.ml: Array Ir
