lib/vm/program.mli: Hashtbl Ir Memory Meta
