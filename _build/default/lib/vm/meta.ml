type t = { srcs : int array; dst : int }

let no_operands = { srcs = [||]; dst = -1 }

let of_instr i =
  {
    srcs = Array.of_list (Ir.Instr.src_regs i);
    dst = (match Ir.Instr.dst_reg i with Some d -> d | None -> -1);
  }

let of_term t = { srcs = Array.of_list (Ir.Instr.term_src_regs t); dst = -1 }
