type t = {
  arena : Bytes.t;
  mapped : Bytes.t;  (* one flag byte per arena byte; shared across clones *)
  size : int;
}

let create_template ~size ~regions =
  let arena = Bytes.make size '\000' in
  let mapped = Bytes.make size '\000' in
  List.iter
    (fun (base, init) ->
      let len = Bytes.length init in
      if base < 0 || base + len > size then
        invalid_arg "Memory.create_template: region out of bounds";
      for i = base to base + len - 1 do
        if Bytes.get mapped i <> '\000' then
          invalid_arg "Memory.create_template: overlapping regions";
        Bytes.set mapped i '\001'
      done;
      Bytes.blit init 0 arena base len)
    regions;
  { arena; mapped; size }

let clone t = { t with arena = Bytes.copy t.arena }
let size t = t.size

let check t ~width ~addr =
  if addr < 0 || addr + width > t.size then raise (Trap.Trap Trap.Segfault);
  let align = if width < 4 then width else 4 in
  if addr land (align - 1) <> 0 then raise (Trap.Trap Trap.Misaligned);
  (* Guard gaps exceed the largest access width, so checking the first and
     last byte of the access suffices. *)
  if Bytes.unsafe_get t.mapped addr = '\000'
     || Bytes.unsafe_get t.mapped (addr + width - 1) = '\000'
  then raise (Trap.Trap Trap.Segfault)

let read_int t ~width ~addr =
  check t ~width ~addr;
  match width with
  | 1 -> Bytes.get_uint8 t.arena addr
  | 2 -> Bytes.get_uint16_le t.arena addr
  | 4 -> Int32.to_int (Bytes.get_int32_le t.arena addr) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le t.arena addr)
  | _ -> invalid_arg "Memory.read_int: bad width"

let write_int t ~width ~addr v =
  check t ~width ~addr;
  match width with
  | 1 -> Bytes.set_uint8 t.arena addr (v land 0xFF)
  | 2 -> Bytes.set_uint16_le t.arena addr (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le t.arena addr (Int32.of_int v)
  | 8 -> Bytes.set_int64_le t.arena addr (Int64.of_int v)
  | _ -> invalid_arg "Memory.write_int: bad width"

let read_f64 t ~addr =
  check t ~width:8 ~addr;
  Int64.float_of_bits (Bytes.get_int64_le t.arena addr)

let write_f64 t ~addr v =
  check t ~width:8 ~addr;
  Bytes.set_int64_le t.arena addr (Int64.bits_of_float v)

let peek_bytes t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > t.size then
    invalid_arg "Memory.peek_bytes: out of bounds";
  Bytes.sub t.arena addr len
