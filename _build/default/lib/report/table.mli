(** Plain-text aligned tables for the benches, examples and CLI. *)

val render : header:string list -> string list list -> string
(** Column-aligned rendering with a separator rule under the header.  The
    first column is left-aligned, the rest right-aligned.  Rows shorter
    than the header are padded with empty cells. *)

val pct : float -> string
(** A percentage with one decimal, e.g. ["42.5"]. *)

val pct_ci : float -> float -> string
(** ["42.5±1.9"]: percentage with CI half-width. *)
