lib/report/table.mli:
