let render ~header rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    (header :: rows);
  let fmt_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = widths.(i) in
           if i = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         row)
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (fmt_row header :: rule :: List.map fmt_row rows) ^ "\n"

let pct p = Printf.sprintf "%.1f" p
let pct_ci p half = Printf.sprintf "%.1f±%.1f" p half
