(* xoshiro256** seeded via SplitMix64 (Blackman & Vigna reference code). *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  (* xoshiro256** must not be seeded with the all-zero state. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = of_seed (next_int64 g)

let split_at g i =
  (* Hash the current state together with [i]; do not advance [g]. *)
  let open Int64 in
  let mix = logxor g.s0 (rotl g.s1 13) in
  let mix = logxor mix (rotl g.s2 29) in
  let mix = logxor mix (rotl g.s3 47) in
  of_seed (add mix (mul (of_int i) 0x9E3779B97F4A7C15L))

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the draw exactly uniform. *)
  let bound64 = Int64.of_int bound in
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec draw () =
    let r = Int64.logand (next_int64 g) mask in
    let limit = Int64.sub mask (Int64.rem mask bound64) in
    if r > limit then draw () else Int64.to_int (Int64.rem r bound64)
  in
  draw ()

let int_in_range g ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g bound =
  (* 53 uniform bits, the full precision of a double in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let sample_distinct g ~k ~n =
  if k < 0 || k > n then invalid_arg "Prng.sample_distinct";
  if k = 0 then []
  else if 2 * k >= n then begin
    (* Dense case: shuffle a full index array and take a prefix. *)
    let a = Array.init n (fun i -> i) in
    let taken = ref [] in
    for i = 0 to k - 1 do
      let j = i + int g (n - i) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t;
      taken := a.(i) :: !taken
    done;
    List.rev !taken
  end
  else begin
    (* Sparse case: rejection against a small set. *)
    let seen = Hashtbl.create (2 * k) in
    let rec draw acc remaining =
      if remaining = 0 then List.rev acc
      else
        let c = int g n in
        if Hashtbl.mem seen c then draw acc remaining
        else begin
          Hashtbl.add seen c ();
          draw (c :: acc) (remaining - 1)
        end
    in
    draw [] k
  end

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done
