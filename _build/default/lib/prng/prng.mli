(** Deterministic, splittable pseudo-random number generation.

    Every fault-injection experiment in this repository is replayable from a
    [(campaign seed, experiment index)] pair.  The generator is xoshiro256**
    seeded through SplitMix64, following the reference implementations by
    Blackman and Vigna.  [split] derives a statistically independent stream,
    which is how a campaign seed fans out into per-experiment generators
    without any shared mutable state. *)

type t
(** A mutable generator state. *)

val of_seed : int64 -> t
(** [of_seed s] builds a generator from an arbitrary 64-bit seed (including
    0) by expanding it with SplitMix64. *)

val split : t -> t
(** [split g] advances [g] and returns a fresh generator whose stream is
    independent of the remainder of [g]'s stream. *)

val split_at : t -> int -> t
(** [split_at g i] derives the [i]-th child stream of [g] without advancing
    [g]; [split_at g i] is a pure function of [g]'s current state and [i].
    This is what maps an experiment index to its private generator. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy replays [g]'s future. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on \[0, bound). Requires [bound > 0].
    Uses rejection sampling, so it is exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range g ~lo ~hi] is uniform on the inclusive range \[lo, hi].
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float g bound] is uniform on \[0, bound). *)

val pick : t -> 'a array -> 'a
(** [pick g a] selects a uniform element. Requires [a] non-empty. *)

val sample_distinct : t -> k:int -> n:int -> int list
(** [sample_distinct g ~k ~n] draws [k] distinct integers from \[0, n),
    in the order drawn. Requires [0 <= k <= n]. Used to pick distinct bit
    positions when several flips target the same register. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
